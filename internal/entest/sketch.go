package entest

import (
	"fmt"
	"math"

	"iustitia/internal/entropy"
	"iustitia/internal/persist"
)

// Sketch is the per-width streaming backend behind StreamVector: a
// constant-memory summary of one k-gram stream that can report an estimate
// of S_k at any instant. Two backends implement it — the Lall et al.
// reservoir-sampled AMS estimator (StreamEstimator) and a compressed-
// counting-style hashed histogram (CCSketch) — selectable per run, so the
// accuracy-vs-memory frontier can be measured on the same engine.
//
// The unexported state methods keep the checkpoint codec inside this
// package; external packages persist a sketch through
// StreamVector.ExportState/ImportState.
type Sketch interface {
	// Write consumes the next chunk of the stream (io.Writer; never fails).
	Write(p []byte) (int, error)
	// Width returns the element width k.
	Width() int
	// Elements returns how many k-gram elements have been consumed.
	Elements() int
	// Ready reports whether at least one full element has been consumed.
	Ready() bool
	// EstimateS estimates S_k = Σ m_ik·log2(m_ik) over the stream so far.
	EstimateS() float64
	// EstimateH estimates the normalized entropy h_k.
	EstimateH() float64
	// Counters returns the memory footprint in counter units.
	Counters() int
	// Reset clears all state (generator included) for reuse on a new
	// flow, bit-identical to a fresh sketch.
	Reset()

	exportState(enc *persist.Encoder)
	importState(d *persist.Decoder) error
}

var (
	_ Sketch = (*StreamEstimator)(nil)
	_ Sketch = (*CCSketch)(nil)
)

// SketchKind selects a Sketch backend.
type SketchKind uint8

const (
	// SketchLall is the reservoir-sampled AMS estimator of Lall et al.
	// (StreamEstimator): unbiased, with the paper's (δ,ε) guarantee.
	SketchLall SketchKind = iota
	// SketchCC is the compressed-counting-style hashed histogram
	// (CCSketch): biased up by collisions, but ~12x smaller per counter.
	SketchCC
)

// String names the kind for flags and logs.
func (k SketchKind) String() string {
	switch k {
	case SketchLall:
		return "lall"
	case SketchCC:
		return "cc"
	default:
		return fmt.Sprintf("SketchKind(%d)", int(k))
	}
}

// ParseSketchKind maps a flag value to its kind.
func ParseSketchKind(s string) (SketchKind, error) {
	switch s {
	case "lall":
		return SketchLall, nil
	case "cc":
		return SketchCC, nil
	default:
		return 0, fmt.Errorf("entest: unknown sketch kind %q (want lall|cc)", s)
	}
}

// NewSketch builds a sketch of the given kind for element width k, sized
// from (epsilon, delta) and expectedLen exactly like NewStream.
func NewSketch(kind SketchKind, epsilon, delta float64, k, expectedLen int, seed int64) (Sketch, error) {
	switch kind {
	case SketchLall:
		return NewStream(epsilon, delta, k, expectedLen, seed)
	case SketchCC:
		return NewCC(epsilon, delta, k, expectedLen, seed)
	default:
		return nil, fmt.Errorf("entest: unknown sketch kind %d", int(kind))
	}
}

// StreamConfig assembles a StreamVector: the (δ,ε) parameters, the feature
// widths, the expected stream length (the flow buffer size b, which sizes
// the counter budget), the sampling seed, and the sketch backend.
type StreamConfig struct {
	Epsilon     float64
	Delta       float64
	Widths      []int
	ExpectedLen int
	Seed        int64
	// Kind selects the per-width backend (default SketchLall).
	Kind SketchKind
}

// CCSketch estimates S_k with a hashed histogram in the style of
// compressed counting (Ping Li) and the GMV streaming estimators: d rows
// of w counters, each row bucketing every element through an independent
// hash. A collision merges two elements' counts, and since
// (a+b)·log(a+b) >= a·log(a) + b·log(b), every row's Σ c·log2(c) only
// overestimates S — so the minimum over rows is the least-collided row's
// estimate, biased up by an amount that shrinks as w grows relative to
// the number of distinct elements.
//
// Compared with the Lall reservoir (48 bytes per slot), a CC counter is a
// single uint32: for the same (δ,ε)-derived counter budget it is ~12x
// smaller per flow, at the price of a one-sided bias instead of the AMS
// unbiasedness. The differential bench harness measures both.
//
// A CCSketch is not safe for concurrent use.
type CCSketch struct {
	k       int
	rows    int // d, sized like the Lall group count g
	width   int // w, sized like the Lall per-group budget z
	counts  []uint32
	rowSeed []uint64
	n       int // elements seen so far
	win     kgramWin
	seed    int64
}

// NewCC builds a compressed-counting sketch for element width k. The rows
// × width grid reuses the Lall sizing (g groups, z counters per group) so
// the two backends hold the same number of counters and are directly
// comparable.
func NewCC(epsilon, delta float64, k, expectedLen int, seed int64) (*CCSketch, error) {
	if k < 2 {
		return nil, fmt.Errorf("entest: stream estimation needs k >= 2 (|f_1| is too small), got %d", k)
	}
	if expectedLen < k {
		return nil, fmt.Errorf("entest: expected length %d shorter than element width %d", expectedLen, k)
	}
	base, err := New(epsilon, delta, seed)
	if err != nil {
		return nil, err
	}
	rows := base.Groups()
	width := base.CountersPerGroup(k, expectedLen)
	c := &CCSketch{
		k:       k,
		rows:    rows,
		width:   width,
		counts:  make([]uint32, rows*width),
		rowSeed: make([]uint64, rows),
		win:     newKgramWin(k),
		seed:    seed,
	}
	rng := newPRNG(seed)
	for r := range c.rowSeed {
		c.rowSeed[r] = rng.next()
	}
	return c, nil
}

// Width returns the element width k.
func (c *CCSketch) Width() int { return c.k }

// Counters returns the d·w counter grid size.
func (c *CCSketch) Counters() int { return len(c.counts) }

// Elements returns how many k-gram elements have been consumed.
func (c *CCSketch) Elements() int { return c.n }

// Ready reports whether at least one full element has been consumed.
func (c *CCSketch) Ready() bool { return c.n > 0 }

// Write consumes the next chunk of the stream. It implements io.Writer and
// never fails.
func (c *CCSketch) Write(p []byte) (int, error) {
	if c.win.mode == winString {
		for _, b := range p {
			if !c.win.push(b) {
				continue
			}
			c.consumeKey(fnv64(c.win.buf))
			c.win.slide()
		}
		return len(p), nil
	}
	for _, b := range p {
		if !c.win.push(b) {
			continue
		}
		// Fold the two register words into one 64-bit key; 64-bit key
		// collisions are negligible next to the w-bucket collisions the
		// min-row estimate already absorbs.
		c.consumeKey(c.win.reg + 0x9E3779B97F4A7C15*c.win.regHi)
	}
	return len(p), nil
}

// consumeKey buckets one element into every row.
func (c *CCSketch) consumeKey(key uint64) {
	c.n++
	w := uint64(c.width)
	for r, rs := range c.rowSeed {
		h := mix64(key ^ rs)
		c.counts[r*c.width+int(h%w)]++
	}
}

// fnv64 hashes a string-mode element (FNV-1a).
func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, x := range b {
		h = (h ^ uint64(x)) * 1099511628211
	}
	return h
}

// EstimateS returns the minimum over rows of Σ c·log2(c): every row
// overestimates S under collisions, so the min is the tightest available
// estimate. It returns 0 before any element arrives.
func (c *CCSketch) EstimateS() float64 {
	if c.n == 0 {
		return 0
	}
	best := math.Inf(1)
	for r := 0; r < c.rows; r++ {
		var s float64
		for _, cnt := range c.counts[r*c.width : (r+1)*c.width] {
			if cnt > 1 {
				s += float64(cnt) * math.Log2(float64(cnt))
			}
		}
		if s < best {
			best = s
		}
	}
	return best
}

// EstimateH returns the current normalized-entropy estimate h_k.
func (c *CCSketch) EstimateH() float64 {
	return entropy.NormalizeS(c.EstimateS(), c.n, c.k)
}

// Reset clears all state for reuse on a new flow.
func (c *CCSketch) Reset() {
	for i := range c.counts {
		c.counts[i] = 0
	}
	c.n = 0
	c.win.reset()
}

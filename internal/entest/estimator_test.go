package entest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"iustitia/internal/entropy"
)

func TestNewValidation(t *testing.T) {
	cases := []struct{ eps, delta float64 }{
		{0, 0.5}, {1, 0.5}, {-0.1, 0.5}, {0.5, 0}, {0.5, 1}, {0.5, 1.5},
	}
	for _, tc := range cases {
		if _, err := New(tc.eps, tc.delta, 1); err == nil {
			t.Errorf("New(%v, %v): want error", tc.eps, tc.delta)
		}
	}
	if _, err := New(0.25, 0.75, 1); err != nil {
		t.Errorf("New(0.25, 0.75): %v", err)
	}
}

func TestGroups(t *testing.T) {
	cases := []struct {
		delta float64
		want  int
	}{
		{0.5, 2},   // 2*log2(2) = 2
		{0.25, 4},  // 2*log2(4) = 4
		{0.75, 1},  // 2*0.415 = 0.83 -> ceil 1
		{0.1, 7},   // 2*3.32 = 6.64 -> ceil 7
		{0.999, 1}, // floor effect: never below 1
	}
	for _, tc := range cases {
		e, err := New(0.25, tc.delta, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.Groups(); got != tc.want {
			t.Errorf("Groups(delta=%v) = %d, want %d", tc.delta, got, tc.want)
		}
	}
}

func TestCountersPerGroup(t *testing.T) {
	e, err := New(0.25, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// k=2, b=1024: log_{2^16}(1024) = 10/16; z = ceil(32*0.625/0.0625) = 320.
	if got := e.CountersPerGroup(2, 1024); got != 320 {
		t.Errorf("z(k=2,b=1024) = %d, want 320", got)
	}
	// Larger k needs fewer counters (log_{|f_k|} b shrinks).
	if z3 := e.CountersPerGroup(3, 1024); z3 >= 320 {
		t.Errorf("z(k=3) = %d, want < z(k=2) = 320", z3)
	}
	if got := e.CountersPerGroup(2, 1); got != 1 {
		t.Errorf("z(b=1) = %d, want 1 floor", got)
	}
}

func TestCountersSkipsWidthOne(t *testing.T) {
	e, err := New(0.25, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	all := e.Counters([]int{1, 2, 3}, 1024)
	noOne := e.Counters([]int{2, 3}, 1024)
	if all != noOne {
		t.Errorf("h_1 must not consume estimation counters: %d vs %d", all, noOne)
	}
	if all == 0 {
		t.Error("Counters = 0 for non-trivial widths")
	}
}

func TestEstimateHWidthOneIsExact(t *testing.T) {
	e, err := New(0.25, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("exact path for h1 regardless of sampling randomness")
	got, err := e.EstimateH(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := entropy.H(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("EstimateH(k=1) = %v, want exact %v", got, want)
	}
}

func TestEstimateSConstantData(t *testing.T) {
	// All elements identical: every sampled counter sees the full
	// downstream count, and S estimation is exact in expectation and in
	// every sample: m_1k = n, S = n*log2(n).
	e, err := New(0.3, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 257) // 256 two-grams, all "aa"
	for i := range data {
		data[i] = 'a'
	}
	s, err := e.EstimateS(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Downstream counts range over 1..n, giving the unbiased-estimator
	// telescoping property; constant data yields Ŝ close to n·log2(n) but
	// each single sample is n·(c·log c − (c−1)·log(c−1)) for its own c, so
	// only the average telescopes. Accept the ε bound.
	n := 256.0
	want := n * math.Log2(n)
	if math.Abs(s-want) > 0.5*want {
		t.Errorf("EstimateS(constant) = %v, want ~%v", s, want)
	}
}

func TestEstimateHShortData(t *testing.T) {
	e, err := New(0.25, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EstimateH([]byte{1}, 2); err != entropy.ErrShortSequence {
		t.Errorf("err = %v, want ErrShortSequence", err)
	}
	if _, err := e.EstimateS([]byte{1, 2}, 0); err == nil {
		t.Error("k=0: want error")
	}
}

func TestEstimateAccuracyOnSkewedStream(t *testing.T) {
	// Statistical check of the (δ,ε) guarantee on a low-entropy skewed
	// stream, where the estimator is strongest: repeated trials must land
	// within the relative-error bound most of the time.
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 1024)
	for i := range data {
		// Zipf-ish skew over a handful of symbols.
		data[i] = byte(rng.Intn(4) * rng.Intn(4))
	}
	exact, err := entropy.H(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(0.25, 0.25, 99)
	if err != nil {
		t.Fatal(err)
	}
	var within int
	const trials = 20
	for i := 0; i < trials; i++ {
		got, err := e.EstimateH(data, 2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-exact) <= 0.25*exact+0.02 {
			within++
		}
	}
	if within < trials*3/5 {
		t.Errorf("only %d/%d trials within error bound (exact=%v)", within, trials, exact)
	}
}

func TestVectorLengthAndBounds(t *testing.T) {
	e, err := New(0.25, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 512)
	rand.New(rand.NewSource(2)).Read(data)
	widths := []int{1, 2, 3, 5}
	vec, err := e.Vector(data, widths)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != len(widths) {
		t.Fatalf("len = %d, want %d", len(vec), len(widths))
	}
	for i, h := range vec {
		if h < 0 || h > 1 {
			t.Errorf("vec[%d] = %v outside [0,1]", i, h)
		}
	}
}

func TestFeatureSetCoefficient(t *testing.T) {
	// Paper values (for the preferred low-k sets φ′ actually deployed):
	// K_φSVM = 8.26 for {1,2,3,5}, K_φCART = 6.26 for {1,3,4,5}.
	if got := FeatureSetCoefficient([]int{1, 2, 3, 5}); math.Abs(got-8.26) > 0.1 {
		t.Errorf("K_φSVM = %v, want ≈8.26", got)
	}
	if got := FeatureSetCoefficient([]int{1, 3, 4, 5}); math.Abs(got-6.26) > 0.1 {
		t.Errorf("K_φCART = %v, want ≈6.26", got)
	}
	if got := FeatureSetCoefficient([]int{1}); got != 0 {
		t.Errorf("K_φ({1}) = %v, want 0", got)
	}
}

func TestMinEpsilonPaperOperatingPoint(t *testing.T) {
	// Paper §4.4.1: with b=1024 and α≈1911 the bound reduces to
	// ε > 0.18·sqrt(log2(1/δ)). Check at δ=0.5 where the sqrt is 1.
	eps, err := MinEpsilon([]int{1, 2, 3, 5}, 1024, 1911, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if eps < 0.1 || eps > 0.3 {
		t.Errorf("MinEpsilon = %v, want ≈0.18-0.22", eps)
	}
}

func TestMinEpsilonValidation(t *testing.T) {
	if _, err := MinEpsilon([]int{1, 2}, 1024, 0, 0.5); err == nil {
		t.Error("alpha=0: want error")
	}
	if _, err := MinEpsilon([]int{1, 2}, 1, 100, 0.5); err == nil {
		t.Error("b=1: want error")
	}
	if _, err := MinEpsilon([]int{1, 2}, 1024, 100, 0); err == nil {
		t.Error("delta=0: want error")
	}
}

// Property: estimated h is always clamped to [0,1] for arbitrary data.
func TestEstimateHBoundsProperty(t *testing.T) {
	e, err := New(0.4, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(data []byte) bool {
		if len(data) < 2 {
			return true
		}
		h, err := e.EstimateH(data, 2)
		if err != nil {
			return false
		}
		return h >= 0 && h <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: estimator uses strictly fewer counters as epsilon grows.
func TestCountersMonotoneProperty(t *testing.T) {
	prop := func(seed uint8) bool {
		loose, err1 := New(0.5, 0.5, int64(seed))
		tight, err2 := New(0.1, 0.5, int64(seed))
		if err1 != nil || err2 != nil {
			return false
		}
		widths := []int{2, 3, 5}
		return loose.Counters(widths, 1024) < tight.Counters(widths, 1024)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

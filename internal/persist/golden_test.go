package persist_test

// Golden snapshot-compatibility tests. The fixtures under testdata/ are
// version-1 snapshots built from hand-constructed (untrained, fully
// deterministic) artifacts; the tests prove that today's decoders still
// read yesterday's bytes and that today's encoders still produce them.
// A failure here means the wire format changed without a version bump.
//
// Regenerate after an INTENTIONAL format change (bump snapshot version
// first) with:
//
//	go test ./internal/persist -run TestGolden -update

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"iustitia/internal/core"
	"iustitia/internal/corpus"
	"iustitia/internal/flow"
	"iustitia/internal/persist"
)

var updateGolden = flag.Bool("update", false, "rewrite golden snapshot fixtures")

// goldenClassifierPayload builds the classifier-snapshot payload for a
// hand-built CART tree: kind, feature widths, model blob.
func goldenClassifierPayload(t testing.TB) []byte {
	tree := fuzzSeedTree()
	blob, err := tree.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var e persist.Encoder
	e.U8(uint8(core.KindCART))
	e.U32(2) // two entropy features
	e.U32(16)
	e.U32(16)
	e.Blob(blob)
	return e.Bytes()
}

// goldenCDBPayload builds a CDB export with three records at fixed
// timestamps.
func goldenCDBPayload(t testing.TB) []byte {
	cdb := flow.NewCDB(flow.CDBConfig{})
	for i := 0; i < 3; i++ {
		var id flow.ID
		id[0] = byte(i + 1)
		cdb.Insert(id, corpus.Class(i%int(corpus.NumClasses)), time.Duration(i+1)*time.Second)
	}
	return cdb.Export()
}

// goldenCheckpointPayload builds an engine checkpoint: fixed counters
// plus the golden CDB.
func goldenCheckpointPayload(t testing.TB) []byte {
	var e persist.Encoder
	e.U32(uint32(corpus.NumClasses))
	for i := 0; i < int(corpus.NumClasses); i++ {
		e.I64(int64(i + 1)) // queued per class
	}
	e.I64(3) // classified
	e.I64(3) // admitted
	e.I64(0) // shed
	e.I64(0) // evicted
	e.I64(0) // dropped
	e.I64(0) // failed
	e.I64(0) // fallback
	e.Blob(goldenCDBPayload(t))
	return e.Bytes()
}

func goldenFixtures(t testing.TB) map[string]struct {
	kind    persist.Kind
	payload []byte
} {
	return map[string]struct {
		kind    persist.Kind
		payload []byte
	}{
		"classifier_v1.snap": {persist.KindClassifier, goldenClassifierPayload(t)},
		"cdb_v1.snap":        {persist.KindCDB, goldenCDBPayload(t)},
		"checkpoint_v1.snap": {persist.KindCheckpoint, goldenCheckpointPayload(t)},
	}
}

// TestGoldenSnapshotBytes proves encoder stability: regenerating each
// artifact reproduces the checked-in fixture byte for byte.
func TestGoldenSnapshotBytes(t *testing.T) {
	for name, want := range goldenFixtures(t) {
		path := filepath.Join("testdata", name)
		frame := persist.Encode(want.kind, want.payload)
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, frame, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote %s (%d bytes)", path, len(frame))
			continue
		}
		fixture, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s missing (run with -update to generate): %v", path, err)
		}
		if string(fixture) != string(frame) {
			t.Errorf("%s: regenerated frame differs from fixture — wire format changed without a version bump", name)
		}
	}
}

// TestGoldenSnapshotDecodes proves decoder compatibility: every fixture
// still decodes into a usable artifact with the expected semantics.
func TestGoldenSnapshotDecodes(t *testing.T) {
	if *updateGolden {
		t.Skip("fixtures being rewritten")
	}
	load := func(name string, kind persist.Kind) []byte {
		payload, err := persist.LoadFile(filepath.Join("testdata", name), kind)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return payload
	}

	c, err := core.DecodeSnapshot(load("classifier_v1.snap", persist.KindClassifier))
	if err != nil {
		t.Fatalf("classifier: %v", err)
	}
	tree := fuzzSeedTree()
	for _, features := range [][]float64{{0.2, 0.9}, {0.8, 0.1}} {
		want, err := tree.Predict(features)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ClassifyVector(features)
		if err != nil {
			t.Fatalf("classifier predict: %v", err)
		}
		if int(got) != want {
			t.Errorf("golden classifier predicts %v for %v, want %v", got, features, want)
		}
	}

	cdb := flow.NewCDB(flow.CDBConfig{})
	if err := cdb.Import(load("cdb_v1.snap", persist.KindCDB)); err != nil {
		t.Fatalf("cdb: %v", err)
	}
	if cdb.Size() != 3 {
		t.Errorf("golden CDB has %d records, want 3", cdb.Size())
	}
	for i := 0; i < 3; i++ {
		var id flow.ID
		id[0] = byte(i + 1)
		label, ok := cdb.Lookup(id, 10*time.Second)
		if !ok || label != corpus.Class(i%int(corpus.NumClasses)) {
			t.Errorf("golden CDB record %d: (%v,%v)", i, label, ok)
		}
	}

	engine, err := flow.NewEngine(flow.EngineConfig{
		BufferSize: 8,
		Classifier: flow.ClassifierFunc(func([]byte) (corpus.Class, error) {
			return corpus.Text, nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.ImportCheckpoint(load("checkpoint_v1.snap", persist.KindCheckpoint)); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	s := engine.Stats()
	if s.Classified != 3 || s.Admitted != 3 || s.CDB.Size != 3 {
		t.Errorf("golden checkpoint restores Classified=%d Admitted=%d CDB=%d, want 3/3/3",
			s.Classified, s.Admitted, s.CDB.Size)
	}
}

// Package persist is Iustitia's durability layer: a versioned,
// CRC-checksummed binary snapshot format for trained models and the live
// classification database, written atomically so a crash mid-write can
// never corrupt the active snapshot.
//
// A snapshot file is a single frame:
//
//	offset 0   magic   "IUSN" (4 bytes)
//	offset 4   version uint16 LE (currently 1)
//	offset 6   kind    uint16 LE (artifact kind, see Kind)
//	offset 8   length  uint64 LE (payload bytes)
//	offset 16  payload
//	...        crc32   uint32 LE, IEEE, over everything before it
//
// Decoding is hostile-input safe: truncated, bit-flipped, oversized,
// wrong-magic, or wrong-version inputs return typed errors (ErrCorrupt,
// ErrVersion) — never a panic, never a silently wrong artifact. Writers
// use write-temp-then-rename with fsync, so the active snapshot path
// always holds either the previous complete snapshot or the new one.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Kind identifies the artifact a snapshot frame carries, so a CDB
// snapshot can never be loaded where a model was expected.
type Kind uint16

// Artifact kinds.
const (
	// KindClassifier is a trained classifier (CART or SVM with its
	// feature widths) as encoded by internal/core.
	KindClassifier Kind = 1
	// KindCDB is a classification-database export from internal/flow.
	KindCDB Kind = 2
	// KindCheckpoint is a full engine checkpoint (counters + CDB).
	KindCheckpoint Kind = 3
	// KindParallelCheckpoint is a sharded-engine checkpoint: one
	// KindCheckpoint payload per shard, shard count pinned.
	KindParallelCheckpoint Kind = 4
	// KindNodeCheckpoint is an ingest-node checkpoint: the delivery
	// sequence watermark covered by the snapshot, the engine's parallel
	// checkpoint, and the in-flight (pending) flow table, captured under
	// quiesce so replaying every frame above the watermark reconstructs
	// the node exactly.
	KindNodeCheckpoint Kind = 5
	// KindMigration is a filtered flow-table export (pending flows plus
	// their classification-database records) moved between live nodes on
	// a ring rebalance.
	KindMigration Kind = 6
)

// String names the kind for errors and logs.
func (k Kind) String() string {
	switch k {
	case KindClassifier:
		return "classifier"
	case KindCDB:
		return "cdb"
	case KindCheckpoint:
		return "checkpoint"
	case KindParallelCheckpoint:
		return "parallel-checkpoint"
	case KindNodeCheckpoint:
		return "node-checkpoint"
	case KindMigration:
		return "migration"
	default:
		return fmt.Sprintf("Kind(%d)", uint16(k))
	}
}

// Typed decode errors. Callers that fall back to a cold start match on
// these with errors.Is.
var (
	// ErrCorrupt reports a snapshot that is truncated, bit-flipped,
	// wrong-magic, or otherwise not a well-formed frame/payload.
	ErrCorrupt = errors.New("persist: corrupt snapshot")
	// ErrVersion reports a well-framed snapshot written by an
	// incompatible format version.
	ErrVersion = errors.New("persist: unsupported snapshot version")
	// ErrKind reports a valid snapshot holding a different artifact than
	// the caller asked for.
	ErrKind = errors.New("persist: unexpected snapshot kind")
)

const (
	// Version is the current snapshot format version.
	Version = 1

	headerSize  = 16
	trailerSize = 4 // crc32

	// maxPayload caps the declared payload length so a hostile header
	// cannot drive an unbounded allocation. 1 GiB is orders of magnitude
	// above any real model or CDB export.
	maxPayload = 1 << 30
)

var magic = [4]byte{'I', 'U', 'S', 'N'}

// Encode frames a payload as a snapshot: header, payload, CRC.
func Encode(kind Kind, payload []byte) []byte {
	out := make([]byte, headerSize, headerSize+len(payload)+trailerSize)
	copy(out[0:4], magic[:])
	binary.LittleEndian.PutUint16(out[4:6], Version)
	binary.LittleEndian.PutUint16(out[6:8], uint16(kind))
	binary.LittleEndian.PutUint64(out[8:16], uint64(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// Decode validates a snapshot frame and returns its kind and payload.
// The returned payload aliases data.
func Decode(data []byte) (Kind, []byte, error) {
	if len(data) < headerSize+trailerSize {
		return 0, nil, fmt.Errorf("%w: %d bytes is shorter than a frame", ErrCorrupt, len(data))
	}
	if [4]byte(data[0:4]) != magic {
		return 0, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != Version {
		return 0, nil, fmt.Errorf("%w: got version %d, support %d", ErrVersion, v, Version)
	}
	kind := Kind(binary.LittleEndian.Uint16(data[6:8]))
	length := binary.LittleEndian.Uint64(data[8:16])
	if length > maxPayload {
		return 0, nil, fmt.Errorf("%w: declared payload %d exceeds cap", ErrCorrupt, length)
	}
	if uint64(len(data)) != headerSize+length+trailerSize {
		return 0, nil, fmt.Errorf("%w: declared payload %d, frame holds %d bytes",
			ErrCorrupt, length, len(data))
	}
	body := data[:len(data)-trailerSize]
	want := binary.LittleEndian.Uint32(data[len(data)-trailerSize:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return 0, nil, fmt.Errorf("%w: crc mismatch (got %08x, frame says %08x)", ErrCorrupt, got, want)
	}
	return kind, body[headerSize:], nil
}

// DecodeKind decodes a frame and additionally enforces its artifact kind.
func DecodeKind(data []byte, want Kind) ([]byte, error) {
	kind, payload, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if kind != want {
		return nil, fmt.Errorf("%w: got %s, want %s", ErrKind, kind, want)
	}
	return payload, nil
}

// SaveFile atomically writes a framed snapshot to path: the frame goes to
// a temporary file in the same directory, is fsynced, and is renamed over
// path. A crash — even kill -9 — at any point leaves path holding either
// the previous complete snapshot or the new one, never a torn write.
func SaveFile(path string, kind Kind, payload []byte) (err error) {
	frame := Encode(kind, payload)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(frame); err != nil {
		return fmt.Errorf("persist: write %s: %w", tmp.Name(), err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("persist: sync %s: %w", tmp.Name(), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("persist: close %s: %w", tmp.Name(), err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: rename into %s: %w", path, err)
	}
	// Best-effort directory sync so the rename itself is durable; some
	// filesystems do not support syncing directories.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// LoadFile reads and validates the snapshot at path, enforcing its
// artifact kind.
func LoadFile(path string, want Kind) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	payload, err := DecodeKind(data, want)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return payload, nil
}

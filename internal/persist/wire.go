package persist

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file is the low-level wire codec the snapshot payloads are built
// from: fixed-width little-endian primitives behind a sticky-error
// decoder. Every read is bounds-checked and every length that drives an
// allocation is validated against the bytes actually remaining, so a
// hostile payload can make decoding fail but never make it panic or
// allocate unboundedly.

// Encoder appends wire primitives to a byte buffer.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64 by its IEEE-754 bits.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Raw appends bytes verbatim, with no length prefix; the decoder must
// know the count (fixed-size fields like flow IDs).
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Blob appends a U32 length prefix followed by the raw bytes.
func (e *Encoder) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// F64s appends a U32 count prefix followed by the values.
func (e *Encoder) F64s(vs []float64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.F64(v)
	}
}

// Decoder consumes wire primitives from a byte buffer. The first failed
// read latches an error; subsequent reads return zero values, so callers
// can decode a whole structure and check Err once at the end — but any
// length used for allocation or recursion must still be checked where it
// is read.
type Decoder struct {
	data []byte
	off  int
	err  error
}

// NewDecoder wraps data for decoding.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Len returns the number of unread bytes.
func (d *Decoder) Len() int { return len(d.data) - d.off }

// failf latches a corruption error (keeping the first one).
func (d *Decoder) failf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

// take returns the next n bytes, or nil after latching an error.
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Len() < n {
		d.failf("need %d bytes, have %d", n, d.Len())
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

// Take reads n raw bytes (the counterpart of Encoder.Raw). It returns
// nil after latching an error.
func (d *Decoder) Take(n int) []byte { return d.take(n) }

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64 from its IEEE-754 bits.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Count reads a U32 count prefix and validates that count elements of
// elemSize bytes each can still follow, so the caller may allocate
// count elements without trusting the input. It returns -1 on failure.
func (d *Decoder) Count(elemSize int) int {
	n := d.U32()
	if d.err != nil {
		return -1
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if int64(n)*int64(elemSize) > int64(d.Len()) {
		d.failf("count %d × %d bytes exceeds remaining %d", n, elemSize, d.Len())
		return -1
	}
	return int(n)
}

// Blob reads a U32 length prefix and that many raw bytes.
func (d *Decoder) Blob() []byte {
	n := d.Count(1)
	if n < 0 {
		return nil
	}
	return d.take(n)
}

// F64s reads a U32 count prefix and that many float64 values.
func (d *Decoder) F64s() []float64 {
	n := d.Count(8)
	if n < 0 {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = d.F64()
	}
	return vs
}

// Fail lets artifact decoders latch a semantic validation failure (bad
// range, inconsistent counts) as a corruption error.
func (d *Decoder) Fail(format string, args ...any) { d.failf(format, args...) }

// Finish asserts the buffer was consumed exactly and returns the final
// decoding error, if any. Trailing garbage is corruption: it means the
// payload was not produced by the matching encoder.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.Len() != 0 {
		d.failf("%d trailing bytes", d.Len())
	}
	return d.err
}

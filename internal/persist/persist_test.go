package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0x42},
		bytes.Repeat([]byte("snapshot"), 1000),
	}
	for _, payload := range payloads {
		frame := Encode(KindCDB, payload)
		kind, got, err := Decode(frame)
		if err != nil {
			t.Fatalf("payload %d bytes: %v", len(payload), err)
		}
		if kind != KindCDB {
			t.Errorf("kind = %v, want KindCDB", kind)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("payload mismatch: got %d bytes, want %d", len(got), len(payload))
		}
	}
}

// TestDecodeTruncationEveryOffset is the systematic truncation test: a
// valid snapshot clipped at every byte offset must return a clean typed
// error, never a panic.
func TestDecodeTruncationEveryOffset(t *testing.T) {
	frame := Encode(KindCheckpoint, bytes.Repeat([]byte{0xA5}, 257))
	for i := 0; i < len(frame); i++ {
		_, _, err := Decode(frame[:i])
		if err == nil {
			t.Fatalf("Decode(frame[:%d]) succeeded on truncated input", i)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("Decode(frame[:%d]) = %v, want ErrCorrupt/ErrVersion", i, err)
		}
	}
}

// TestDecodeBitFlipEveryOffset flips one bit at every byte offset: the
// CRC (or a stricter header check) must catch all of them.
func TestDecodeBitFlipEveryOffset(t *testing.T) {
	frame := Encode(KindClassifier, []byte("model bytes here"))
	for i := 0; i < len(frame); i++ {
		mutated := append([]byte(nil), frame...)
		mutated[i] ^= 0x10
		_, _, err := Decode(mutated)
		if err == nil {
			t.Fatalf("Decode with bit flipped at offset %d succeeded", i)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("offset %d: err = %v, want ErrCorrupt/ErrVersion", i, err)
		}
	}
}

func TestDecodeErrorTaxonomy(t *testing.T) {
	valid := Encode(KindCDB, []byte("payload"))

	wrongMagic := append([]byte(nil), valid...)
	copy(wrongMagic, "NOPE")
	if _, _, err := Decode(wrongMagic); !errors.Is(err, ErrCorrupt) {
		t.Errorf("wrong magic: err = %v, want ErrCorrupt", err)
	}

	wrongVersion := append([]byte(nil), valid...)
	wrongVersion[4] = 0xFF
	if _, _, err := Decode(wrongVersion); !errors.Is(err, ErrVersion) {
		t.Errorf("wrong version: err = %v, want ErrVersion", err)
	}

	if _, err := DecodeKind(valid, KindClassifier); !errors.Is(err, ErrKind) {
		t.Errorf("wrong kind: err = %v, want ErrKind", err)
	}
	if _, err := DecodeKind(valid, KindCDB); err != nil {
		t.Errorf("right kind: err = %v", err)
	}

	huge := append([]byte(nil), valid...)
	for i := 8; i < 16; i++ {
		huge[i] = 0xFF // declared length ~2^64
	}
	if _, _, err := Decode(huge); !errors.Is(err, ErrCorrupt) {
		t.Errorf("huge declared length: err = %v, want ErrCorrupt", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	payload := []byte("the snapshot payload")
	if err := SaveFile(path, KindCheckpoint, payload); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path, KindCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("loaded %q, want %q", got, payload)
	}
	if _, err := LoadFile(path, KindCDB); !errors.Is(err, ErrKind) {
		t.Errorf("wrong kind: err = %v, want ErrKind", err)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing"), KindCDB); err == nil {
		t.Error("missing file: want error")
	}
}

// TestSaveFileAtomicReplace hammers SaveFile with alternating payloads
// while concurrent readers LoadFile the same path: every successful read
// must see one of the two complete payloads — a torn or mixed read means
// the write-temp-then-rename contract is broken.
func TestSaveFileAtomicReplace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	a := bytes.Repeat([]byte{0xAA}, 64<<10)
	b := bytes.Repeat([]byte{0xBB}, 64<<10)
	if err := SaveFile(path, KindCDB, a); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				payload, err := LoadFile(path, KindCDB)
				if err != nil {
					// A read can race the rename on some filesystems and
					// miss the file entirely, but it must never see a
					// torn frame (CRC failure).
					if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrVersion) {
						errCh <- err
						return
					}
					continue
				}
				if !bytes.Equal(payload, a) && !bytes.Equal(payload, b) {
					errCh <- errors.New("read a payload that was never written")
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		payload := a
		if i%2 == 1 {
			payload = b
		}
		if err := SaveFile(path, KindCDB, payload); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("atomicity violated: %v", err)
	default:
	}
}

// TestSaveFileSurvivesStaleTemp: garbage left behind by a crashed writer
// (a kill -9 between temp write and rename) must not break the active
// snapshot or subsequent saves.
func TestSaveFileSurvivesStaleTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if err := SaveFile(path, KindCDB, []byte("good")); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash artifact.
	if err := os.WriteFile(path+".tmp-crashed", []byte("gar"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := LoadFile(path, KindCDB); err != nil || string(got) != "good" {
		t.Fatalf("active snapshot unreadable after stale temp: %q, %v", got, err)
	}
	if err := SaveFile(path, KindCDB, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	if got, err := LoadFile(path, KindCDB); err != nil || string(got) != "newer" {
		t.Fatalf("overwrite with stale temp present: %q, %v", got, err)
	}
}

// TestSaveFileCleansTempOnError: a failed save (unwritable directory)
// must not leave temp files behind.
func TestSaveFileCleansTempOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "missing-subdir", "state.snap")
	if err := SaveFile(path, KindCDB, []byte("x")); err == nil {
		t.Fatal("save into missing directory: want error")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

func TestSaveFileLeavesNoTempOnSuccess(t *testing.T) {
	dir := t.TempDir()
	if err := SaveFile(filepath.Join(dir, "s.snap"), KindCDB, []byte("x")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "s.snap" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("directory holds %v, want only s.snap", names)
	}
}

func TestKindString(t *testing.T) {
	for kind, want := range map[Kind]string{
		KindClassifier: "classifier",
		KindCDB:        "cdb",
		KindCheckpoint: "checkpoint",
		Kind(99):       "Kind(99)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", uint16(kind), got, want)
		}
	}
}

package persist_test

// Fuzz targets for every decoder that consumes snapshot bytes. The
// invariant under test is uniform: arbitrary input must produce either a
// successful decode or a typed error (persist.ErrCorrupt / ErrVersion /
// ErrKind) — never a panic, never an unbounded allocation. Each target
// is seeded with a valid artifact so coverage starts inside the happy
// path. The targets live in an external test package so they can reach
// the artifact packages (flow, core) that themselves import persist.

import (
	"errors"
	"testing"
	"time"

	"iustitia/internal/core"
	"iustitia/internal/corpus"
	"iustitia/internal/flow"
	"iustitia/internal/ml/cart"
	"iustitia/internal/ml/dataset"
	"iustitia/internal/ml/svm"
	"iustitia/internal/persist"
)

// typedDecodeError reports whether err is one of the sanctioned decode
// failures.
func typedDecodeError(err error) bool {
	return errors.Is(err, persist.ErrCorrupt) ||
		errors.Is(err, persist.ErrVersion) ||
		errors.Is(err, persist.ErrKind)
}

// fuzzSeedTree builds a small deterministic tree without training.
func fuzzSeedTree() *cart.Tree {
	return &cart.Tree{
		Classes: int(corpus.NumClasses),
		Width:   2,
		Root: &cart.Node{
			Feature:   0,
			Threshold: 0.5,
			Left:      &cart.Node{Label: int(corpus.Text), Counts: []int{3, 1, 0}},
			Right:     &cart.Node{Label: int(corpus.Encrypted), Counts: []int{0, 1, 4}},
		},
	}
}

func fuzzSeedCDB() []byte {
	cdb := flow.NewCDB(flow.CDBConfig{})
	for i := 0; i < 5; i++ {
		var id flow.ID
		id[0] = byte(i)
		cdb.Insert(id, corpus.Class(i%int(corpus.NumClasses)), time.Duration(i)*time.Second)
	}
	return cdb.Export()
}

// FuzzDecodeSnapshot exercises the outer frame decoder.
func FuzzDecodeSnapshot(f *testing.F) {
	f.Add(persist.Encode(persist.KindClassifier, []byte("model")))
	f.Add(persist.Encode(persist.KindCDB, nil))
	f.Add(persist.Encode(persist.KindCheckpoint, fuzzSeedCDB()))
	f.Add([]byte("IUSN"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, err := persist.Decode(data)
		if err != nil {
			if !typedDecodeError(err) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		// A successful decode must re-encode to the identical frame.
		if got := persist.Encode(kind, payload); string(got) != string(data) {
			t.Fatalf("decode/encode not a fixpoint for %d-byte frame", len(data))
		}
	})
}

// FuzzDecodeTree exercises the CART payload decoder.
func FuzzDecodeTree(f *testing.F) {
	seed, err := fuzzSeedTree().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tree, err := cart.Decode(data)
		if err != nil {
			if !typedDecodeError(err) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		// Any tree that decodes must be usable.
		if _, err := tree.Predict(make([]float64, tree.Width)); err != nil {
			t.Fatalf("decoded tree cannot predict: %v", err)
		}
	})
}

// FuzzDecodeSVMModel exercises the SVM payload decoder.
func FuzzDecodeSVMModel(f *testing.F) {
	m, err := svm.Train(svmFuzzDataset(f), svm.Config{C: 1, MultiClass: svm.DAG, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	seed, err := m.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		model, err := svm.Decode(data)
		if err != nil {
			if !typedDecodeError(err) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if _, err := model.Predict(make([]float64, model.Width())); err != nil {
			t.Fatalf("decoded model cannot predict: %v", err)
		}
	})
}

func svmFuzzDataset(f *testing.F) *dataset.Dataset {
	var samples []dataset.Sample
	for i := 0; i < 8; i++ {
		x := float64(i%2)*2 - 1
		label := 0
		if x > 0 {
			label = 1
		}
		samples = append(samples, dataset.Sample{
			Features: []float64{x, float64(i) / 8},
			Label:    label,
		})
	}
	ds, err := dataset.New(samples, 2)
	if err != nil {
		f.Fatal(err)
	}
	return ds
}

// FuzzDecodeClassifier exercises the combined classifier snapshot
// decoder (kind + widths + model blob).
func FuzzDecodeClassifier(f *testing.F) {
	tree := fuzzSeedTree()
	treeBlob, err := tree.Encode()
	if err != nil {
		f.Fatal(err)
	}
	var e persist.Encoder
	e.U8(uint8(core.KindCART))
	e.U32(2)
	e.U32(8)
	e.U32(8)
	e.Blob(treeBlob)
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := core.DecodeSnapshot(data); err != nil && !typedDecodeError(err) {
			t.Fatalf("untyped error: %v", err)
		}
	})
}

// FuzzImportCDB exercises CDB.Import on a fresh database, both
// unbounded and capped.
func FuzzImportCDB(f *testing.F) {
	f.Add(fuzzSeedCDB())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, cfg := range []flow.CDBConfig{{}, {MaxRecords: 3}} {
			cdb := flow.NewCDB(cfg)
			if err := cdb.Import(data); err != nil {
				if !typedDecodeError(err) {
					t.Fatalf("untyped error: %v", err)
				}
				if cdb.Size() != 0 {
					t.Fatalf("failed import left %d records", cdb.Size())
				}
				continue
			}
			if cfg.MaxRecords > 0 && cdb.Size() > cfg.MaxRecords {
				t.Fatalf("import overflowed MaxRecords: %d > %d", cdb.Size(), cfg.MaxRecords)
			}
		}
	})
}

// FuzzImportCheckpoint exercises the full engine checkpoint decoder.
func FuzzImportCheckpoint(f *testing.F) {
	cfg := flow.EngineConfig{
		BufferSize: 8,
		Classifier: flow.ClassifierFunc(func([]byte) (corpus.Class, error) {
			return corpus.Text, nil
		}),
	}
	e, err := flow.NewEngine(cfg)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(e.ExportCheckpoint())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fresh, err := flow.NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.ImportCheckpoint(data); err != nil {
			if !typedDecodeError(err) {
				t.Fatalf("untyped error: %v", err)
			}
			if s := fresh.Stats(); s.Classified != 0 || s.CDB.Size != 0 {
				t.Fatalf("failed import mutated the engine: %+v", s)
			}
		}
	})
}

package pcap

import (
	"bytes"
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/packet"
)

// FuzzRead checks the capture parser never panics on corrupted pcap bytes.
func FuzzRead(f *testing.F) {
	cfg := packet.DefaultTraceConfig()
	cfg.Flows = 5
	cfg.Duration = 2 * time.Second
	cfg.MaxFlowBytes = 1 << 10
	trace, err := packet.Generate(cfg, corpus.NewGenerator(71))
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := WriteTrace(&valid, trace); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:40])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, blob []byte) {
		packets, err := Read(bytes.NewReader(blob))
		if err != nil {
			return
		}
		for i := range packets {
			tr := packets[i].Tuple.Transport
			if tr != packet.TCP && tr != packet.UDP {
				t.Fatalf("parsed packet %d has impossible transport %v", i, tr)
			}
		}
	})
}

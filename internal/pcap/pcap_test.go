package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/packet"
)

func samplePacket(transport packet.Transport, payload string) *packet.Packet {
	return &packet.Packet{
		Tuple: packet.FiveTuple{
			SrcIP: [4]byte{10, 1, 2, 3}, DstIP: [4]byte{192, 168, 4, 5},
			SrcPort: 4444, DstPort: 80, Transport: transport,
		},
		Time:    1500 * time.Millisecond,
		Flags:   packet.FlagACK | packet.FlagPSH,
		Payload: []byte(payload),
	}
}

func TestRoundTripTCP(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := samplePacket(packet.TCP, "hello capture")
	if err := w.WritePacket(want); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("packets = %d, want 1", len(got))
	}
	p := got[0]
	if p.Tuple != want.Tuple {
		t.Errorf("tuple = %v, want %v", p.Tuple, want.Tuple)
	}
	if !bytes.Equal(p.Payload, want.Payload) {
		t.Errorf("payload = %q, want %q", p.Payload, want.Payload)
	}
	if !p.Flags.Has(packet.FlagACK | packet.FlagPSH) {
		t.Errorf("flags = %v", p.Flags)
	}
	if p.Time != want.Time {
		t.Errorf("time = %v, want %v", p.Time, want.Time)
	}
}

func TestRoundTripUDPAndFIN(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	udp := samplePacket(packet.UDP, "datagram")
	udp.Flags = 0
	fin := samplePacket(packet.TCP, "")
	fin.Flags = packet.FlagFIN | packet.FlagACK
	fin.Time = 2 * time.Second
	for _, p := range []*packet.Packet{udp, fin} {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("packets = %d, want 2", len(got))
	}
	if got[0].Tuple.Transport != packet.UDP || string(got[0].Payload) != "datagram" {
		t.Errorf("udp packet = %+v", got[0])
	}
	if !got[1].Flags.Has(packet.FlagFIN) || got[1].IsData() {
		t.Errorf("fin packet = %+v", got[1])
	}
}

func TestChecksumsValid(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := samplePacket(packet.TCP, "checksummed payload")
	if err := w.WritePacket(p); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[24+16:] // skip global + record headers
	ip := raw[etherHeaderLen:]
	// Recomputing the Internet checksum over a valid header yields 0.
	if got := checksum(ip[:ipHeaderLen]); got != 0 {
		t.Errorf("IP checksum verification = %#x, want 0", got)
	}
	total := int(binary.BigEndian.Uint16(ip[2:4]))
	segment := ip[ipHeaderLen:total]
	if got := transportChecksum(p.Tuple, protoTCP, segment); got != 0 {
		t.Errorf("TCP checksum verification = %#x, want 0", got)
	}
}

func TestTCPSequenceAdvances(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := samplePacket(packet.TCP, "0123456789")
	if err := w.WritePacket(p); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(p); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	frameLen := etherHeaderLen + ipHeaderLen + tcpHeaderLen + 10
	first := raw[24+16:]
	second := raw[24+16+frameLen+16:]
	seq1 := binary.BigEndian.Uint32(first[etherHeaderLen+ipHeaderLen+4:])
	seq2 := binary.BigEndian.Uint32(second[etherHeaderLen+ipHeaderLen+4:])
	if seq1 != 0 || seq2 != 10 {
		t.Errorf("sequence numbers = %d, %d; want 0, 10", seq1, seq2)
	}
}

func TestWriteTraceRoundTrip(t *testing.T) {
	cfg := packet.DefaultTraceConfig()
	cfg.Flows = 40
	cfg.Duration = 5 * time.Second
	cfg.MaxFlowBytes = 2 << 10
	trace, err := packet.Generate(cfg, corpus.NewGenerator(51))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trace.Packets) {
		t.Fatalf("packets = %d, want %d", len(got), len(trace.Packets))
	}
	for i := range got {
		want := &trace.Packets[i]
		if got[i].Tuple != want.Tuple || !bytes.Equal(got[i].Payload, want.Payload) {
			t.Fatalf("packet %d differs after pcap round trip", i)
		}
		// pcap timestamps are microsecond-resolution.
		if diff := got[i].Time - want.Time.Truncate(time.Microsecond); diff != 0 {
			t.Fatalf("packet %d time differs by %v", i, diff)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     nil,
		"short":     []byte{1, 2, 3},
		"bad magic": make([]byte, 24),
	}
	for name, blob := range cases {
		if _, err := Read(bytes.NewReader(blob)); !errors.Is(err, ErrBadCapture) {
			t.Errorf("%s: err = %v, want ErrBadCapture", name, err)
		}
	}
}

func TestWritePacketValidation(t *testing.T) {
	w, err := NewWriter(bytes.NewBuffer(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(nil); err == nil {
		t.Error("nil packet: want error")
	}
	bad := samplePacket(packet.Transport(9), "x")
	if err := w.WritePacket(bad); err == nil {
		t.Error("unknown transport: want error")
	}
	huge := samplePacket(packet.TCP, string(make([]byte, 70000)))
	if err := w.WritePacket(huge); err == nil {
		t.Error("oversized packet: want error")
	}
}

func TestReadSkipsNonIPv4Frames(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(samplePacket(packet.TCP, "keep")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Append an ARP-ish record by hand.
	var rec [16]byte
	arp := make([]byte, etherHeaderLen)
	binary.BigEndian.PutUint16(arp[12:14], 0x0806)
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(arp)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(arp)))
	buf.Write(rec[:])
	buf.Write(arp)

	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("packets = %d, want 1 (ARP skipped)", len(got))
	}
}

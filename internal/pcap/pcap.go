// Package pcap writes and reads libpcap capture files (the classic
// tcpdump format, microsecond timestamps, Ethernet link type), so the
// synthetic gateway traces can be inspected with standard tooling
// (tcpdump, Wireshark) or ingested from it. Packets are framed as
// Ethernet II / IPv4 / TCP-or-UDP with correct IP and transport
// checksums.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"iustitia/internal/packet"
)

// ErrBadCapture is returned when a capture file is malformed.
var ErrBadCapture = errors.New("pcap: malformed capture")

const (
	magicMicroseconds = 0xa1b2c3d4
	versionMajor      = 2
	versionMinor      = 4
	linkTypeEthernet  = 1
	snapLen           = 65535

	etherTypeIPv4 = 0x0800
	protoTCP      = 6
	protoUDP      = 17

	etherHeaderLen = 14
	ipHeaderLen    = 20
	tcpHeaderLen   = 20
	udpHeaderLen   = 8
)

// TCP flag bits in the header's 13th byte.
const (
	tcpFIN = 1 << 0
	tcpSYN = 1 << 1
	tcpRST = 1 << 2
	tcpPSH = 1 << 3
	tcpACK = 1 << 4
)

// Writer emits one pcap file. Create with NewWriter, append packets with
// WritePacket, and Flush at the end.
type Writer struct {
	bw  *bufio.Writer
	seq map[packet.FiveTuple]uint32
}

// NewWriter writes the global header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicroseconds)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkTypeEthernet)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{bw: bw, seq: make(map[packet.FiveTuple]uint32)}, nil
}

// WritePacket frames and appends one packet at its virtual timestamp.
func (w *Writer) WritePacket(p *packet.Packet) error {
	if p == nil {
		return errors.New("pcap: nil packet")
	}
	frame, err := w.frame(p)
	if err != nil {
		return err
	}
	var rec [16]byte
	usec := p.Time.Microseconds()
	binary.LittleEndian.PutUint32(rec[0:4], uint32(usec/1e6))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(usec%1e6))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(frame)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
	if _, err := w.bw.Write(rec[:]); err != nil {
		return err
	}
	_, err = w.bw.Write(frame)
	return err
}

// Flush completes the file.
func (w *Writer) Flush() error { return w.bw.Flush() }

// frame builds Ethernet/IPv4/transport framing around the payload.
func (w *Writer) frame(p *packet.Packet) ([]byte, error) {
	var transportLen int
	switch p.Tuple.Transport {
	case packet.TCP:
		transportLen = tcpHeaderLen
	case packet.UDP:
		transportLen = udpHeaderLen
	default:
		return nil, fmt.Errorf("pcap: unsupported transport %v", p.Tuple.Transport)
	}
	ipTotal := ipHeaderLen + transportLen + len(p.Payload)
	if ipTotal > 0xffff {
		return nil, fmt.Errorf("pcap: packet too large (%d bytes)", ipTotal)
	}
	frame := make([]byte, etherHeaderLen+ipTotal)

	// Ethernet II: synthetic locally administered MACs derived from IPs.
	copy(frame[0:6], []byte{0x02, 0, p.Tuple.DstIP[0], p.Tuple.DstIP[1], p.Tuple.DstIP[2], p.Tuple.DstIP[3]})
	copy(frame[6:12], []byte{0x02, 0, p.Tuple.SrcIP[0], p.Tuple.SrcIP[1], p.Tuple.SrcIP[2], p.Tuple.SrcIP[3]})
	binary.BigEndian.PutUint16(frame[12:14], etherTypeIPv4)

	// IPv4 header.
	ip := frame[etherHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipTotal))
	ip[8] = 64 // TTL
	switch p.Tuple.Transport {
	case packet.TCP:
		ip[9] = protoTCP
	case packet.UDP:
		ip[9] = protoUDP
	}
	copy(ip[12:16], p.Tuple.SrcIP[:])
	copy(ip[16:20], p.Tuple.DstIP[:])
	binary.BigEndian.PutUint16(ip[10:12], checksum(ip[:ipHeaderLen]))

	transport := ip[ipHeaderLen:]
	switch p.Tuple.Transport {
	case packet.TCP:
		binary.BigEndian.PutUint16(transport[0:2], p.Tuple.SrcPort)
		binary.BigEndian.PutUint16(transport[2:4], p.Tuple.DstPort)
		seq := w.seq[p.Tuple]
		binary.BigEndian.PutUint32(transport[4:8], seq)
		w.seq[p.Tuple] = seq + uint32(len(p.Payload))
		transport[12] = tcpHeaderLen / 4 << 4 // data offset
		transport[13] = tcpFlags(p.Flags)
		binary.BigEndian.PutUint16(transport[14:16], 65535) // window
		copy(transport[tcpHeaderLen:], p.Payload)
		binary.BigEndian.PutUint16(transport[16:18],
			transportChecksum(p.Tuple, protoTCP, transport[:tcpHeaderLen+len(p.Payload)]))
	case packet.UDP:
		binary.BigEndian.PutUint16(transport[0:2], p.Tuple.SrcPort)
		binary.BigEndian.PutUint16(transport[2:4], p.Tuple.DstPort)
		binary.BigEndian.PutUint16(transport[4:6], uint16(udpHeaderLen+len(p.Payload)))
		copy(transport[udpHeaderLen:], p.Payload)
		binary.BigEndian.PutUint16(transport[6:8],
			transportChecksum(p.Tuple, protoUDP, transport[:udpHeaderLen+len(p.Payload)]))
	}
	return frame, nil
}

// tcpFlags maps the packet model's flags to wire bits. Data packets imply
// ACK so captures look like established connections.
func tcpFlags(f packet.Flags) byte {
	var b byte
	if f.Has(packet.FlagSYN) {
		b |= tcpSYN
	}
	if f.Has(packet.FlagACK) {
		b |= tcpACK
	}
	if f.Has(packet.FlagPSH) {
		b |= tcpPSH
	}
	if f.Has(packet.FlagFIN) {
		b |= tcpFIN
	}
	if f.Has(packet.FlagRST) {
		b |= tcpRST
	}
	return b
}

func wireFlags(b byte) packet.Flags {
	var f packet.Flags
	if b&tcpSYN != 0 {
		f |= packet.FlagSYN
	}
	if b&tcpACK != 0 {
		f |= packet.FlagACK
	}
	if b&tcpPSH != 0 {
		f |= packet.FlagPSH
	}
	if b&tcpFIN != 0 {
		f |= packet.FlagFIN
	}
	if b&tcpRST != 0 {
		f |= packet.FlagRST
	}
	return f
}

// checksum is the Internet checksum over data.
func checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// transportChecksum computes the TCP/UDP checksum including the IPv4
// pseudo-header. The segment's checksum field must be zero on entry.
func transportChecksum(t packet.FiveTuple, proto byte, segment []byte) uint16 {
	pseudo := make([]byte, 12, 12+len(segment)+1)
	copy(pseudo[0:4], t.SrcIP[:])
	copy(pseudo[4:8], t.DstIP[:])
	pseudo[9] = proto
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(segment)))
	pseudo = append(pseudo, segment...)
	return checksum(pseudo)
}

// Read parses a pcap file written by this package (or any Ethernet/IPv4
// capture) back into packets. Frames that are not IPv4 TCP/UDP are
// skipped. Flow ground truth is not part of pcap, so only packets are
// returned.
func Read(r io.Reader) ([]packet.Packet, error) {
	br := bufio.NewReader(r)
	var global [24]byte
	if _, err := io.ReadFull(br, global[:]); err != nil {
		return nil, fmt.Errorf("%w: global header: %v", ErrBadCapture, err)
	}
	if binary.LittleEndian.Uint32(global[0:4]) != magicMicroseconds {
		return nil, fmt.Errorf("%w: unsupported magic %#x", ErrBadCapture,
			binary.LittleEndian.Uint32(global[0:4]))
	}
	if binary.LittleEndian.Uint32(global[20:24]) != linkTypeEthernet {
		return nil, fmt.Errorf("%w: unsupported link type", ErrBadCapture)
	}

	var packets []packet.Packet
	for {
		var rec [16]byte
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return packets, nil
			}
			return nil, fmt.Errorf("%w: record header: %v", ErrBadCapture, err)
		}
		inclLen := binary.LittleEndian.Uint32(rec[8:12])
		if inclLen > snapLen {
			return nil, fmt.Errorf("%w: record length %d", ErrBadCapture, inclLen)
		}
		frame := make([]byte, inclLen)
		if _, err := io.ReadFull(br, frame); err != nil {
			return nil, fmt.Errorf("%w: truncated frame: %v", ErrBadCapture, err)
		}
		p, ok, err := parseFrame(frame)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		sec := binary.LittleEndian.Uint32(rec[0:4])
		usec := binary.LittleEndian.Uint32(rec[4:8])
		p.Time = time.Duration(sec)*time.Second + time.Duration(usec)*time.Microsecond
		packets = append(packets, p)
	}
}

// parseFrame extracts a packet from one Ethernet frame; ok is false for
// frames this package does not model.
func parseFrame(frame []byte) (packet.Packet, bool, error) {
	var p packet.Packet
	if len(frame) < etherHeaderLen+ipHeaderLen {
		return p, false, nil
	}
	if binary.BigEndian.Uint16(frame[12:14]) != etherTypeIPv4 {
		return p, false, nil
	}
	ip := frame[etherHeaderLen:]
	if ip[0]>>4 != 4 {
		return p, false, nil
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < ipHeaderLen || len(ip) < ihl {
		return p, false, fmt.Errorf("%w: bad IHL", ErrBadCapture)
	}
	total := int(binary.BigEndian.Uint16(ip[2:4]))
	if total > len(ip) {
		return p, false, fmt.Errorf("%w: IP total length %d exceeds frame", ErrBadCapture, total)
	}
	if total < ihl {
		return p, false, fmt.Errorf("%w: IP total length %d below header length %d",
			ErrBadCapture, total, ihl)
	}
	copy(p.Tuple.SrcIP[:], ip[12:16])
	copy(p.Tuple.DstIP[:], ip[16:20])
	transport := ip[ihl:total]
	switch ip[9] {
	case protoTCP:
		if len(transport) < tcpHeaderLen {
			return p, false, fmt.Errorf("%w: short TCP header", ErrBadCapture)
		}
		p.Tuple.Transport = packet.TCP
		p.Tuple.SrcPort = binary.BigEndian.Uint16(transport[0:2])
		p.Tuple.DstPort = binary.BigEndian.Uint16(transport[2:4])
		offset := int(transport[12]>>4) * 4
		if offset < tcpHeaderLen || offset > len(transport) {
			return p, false, fmt.Errorf("%w: bad TCP offset", ErrBadCapture)
		}
		p.Flags = wireFlags(transport[13])
		p.Payload = append([]byte(nil), transport[offset:]...)
	case protoUDP:
		if len(transport) < udpHeaderLen {
			return p, false, fmt.Errorf("%w: short UDP header", ErrBadCapture)
		}
		p.Tuple.Transport = packet.UDP
		p.Tuple.SrcPort = binary.BigEndian.Uint16(transport[0:2])
		p.Tuple.DstPort = binary.BigEndian.Uint16(transport[2:4])
		p.Payload = append([]byte(nil), transport[udpHeaderLen:]...)
	default:
		return p, false, nil
	}
	if len(p.Payload) == 0 {
		p.Payload = nil
	}
	return p, true, nil
}

// WriteTrace dumps an entire trace as a pcap file.
func WriteTrace(w io.Writer, trace *packet.Trace) error {
	pw, err := NewWriter(w)
	if err != nil {
		return err
	}
	for i := range trace.Packets {
		if err := pw.WritePacket(&trace.Packets[i]); err != nil {
			return fmt.Errorf("pcap: packet %d: %w", i, err)
		}
	}
	return pw.Flush()
}

package iustitia

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md
// for paper-vs-measured numbers). Each BenchmarkTableN/BenchmarkFigN runs
// the corresponding experiment from internal/experiments and reports its
// headline metric; run with
//
//	go test -bench=. -benchmem
//
// and use cmd/iustitia-bench to print the full result tables. Micro- and
// ablation benchmarks for the design choices called out in DESIGN.md §5
// follow the experiment benchmarks.

import (
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"iustitia/internal/core"
	"iustitia/internal/corpus"
	"iustitia/internal/entest"
	"iustitia/internal/entropy"
	"iustitia/internal/experiments"
	"iustitia/internal/flow"
	"iustitia/internal/ml/dataset"
	"iustitia/internal/ml/svm"
	"iustitia/internal/packet"
	"iustitia/internal/pcap"
	"iustitia/internal/qos"
)

// benchScale keeps each experiment benchmark in the seconds range. For
// paper-scale runs use cmd/iustitia-bench -scale=paper.
func benchScale() experiments.Scale {
	return experiments.Scale{
		PerClass: 45, Folds: 3,
		MinFileSize: 2 << 10, MaxFileSize: 6 << 10, Seed: 1,
	}
}

func BenchmarkFig2aFeatureSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFeatureSpace(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Bands[corpus.Encrypted].Mean[0]-r.Bands[corpus.Text].Mean[0],
			"h1-band-gap")
	}
}

func BenchmarkTable1CART(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable1(benchScale(), core.KindCART)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Confusion.Accuracy(), "accuracy-%")
	}
}

func BenchmarkTable1SVM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable1(benchScale(), core.KindSVM)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Confusion.Accuracy(), "accuracy-%")
	}
}

func BenchmarkFig3JSD(b *testing.B) {
	portions := []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0}
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunJSD(benchScale(), []int{1, 2}, portions)
		if err != nil {
			b.Fatal(err)
		}
		// Hypothesis-2 headline: f1 JSD at 20% of the file.
		b.ReportMetric(r.Mean[1][corpus.Text][1], "jsd-f1-at-20%")
	}
}

func BenchmarkTable2FeatureSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable2(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Rows)), "rows")
	}
}

func BenchmarkFig4BufferSize(b *testing.B) {
	sizes := []int{8, 32, 128, 512, 2048}
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunBufferSweep(benchScale(), sizes)
		if err != nil {
			b.Fatal(err)
		}
		series := r.Accuracy["H_b"]["svm"]
		b.ReportMetric(100*series[1], "svm-acc-%-at-b32")
	}
}

func BenchmarkFig5CalcCost(b *testing.B) {
	sizes := []int{32, 128, 512, 1024, 4096}
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunCalcCost(benchScale(), core.PhiPrimeSVM, sizes)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Points[3].TimePerVector.Microseconds()), "us-per-vector-b1024")
	}
}

func BenchmarkFig6TrainingMethods(b *testing.B) {
	sizes := []int{32, 256, 1024}
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTrainMethods(benchScale(), sizes, 512)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Accuracy["svm"]["H_b'"][len(sizes)-1], "svm-hb'-acc-%")
	}
}

func BenchmarkFig7EstimationGrid(b *testing.B) {
	epsilons, deltas := experiments.DefaultEstimationGrid()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunEstimationGrid(benchScale(), epsilons, deltas, 1024)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Best["svm"].Accuracy, "svm-best-acc-%")
	}
}

func BenchmarkTable3TimeSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable3(benchScale(), 0.25, 0.75)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Rows)), "rows")
	}
}

func BenchmarkFig8CDBPurging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunCDBPurge(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*float64(r.RemovedByClose)/float64(r.TotalFlows), "fin-rst-removed-%")
	}
}

func BenchmarkFig9TraceCDFs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTraceCDF(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PayloadSize.At(140), "P(size<=140)")
	}
}

func BenchmarkFig10Delay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunDelay(benchScale(), []int{32, 1024})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].MeanPacketsToFill, "c-at-b32")
	}
}

func BenchmarkModelSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunModelSelection(benchScale(), []float64{10, 50}, []float64{100, 1000})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.BestExact.Accuracy, "best-exact-acc-%")
	}
}

// --- Ablation benchmarks (DESIGN.md §5) ---

// BenchmarkAblationPurgePolicy compares CDB growth and reclassification
// cost across purge policies.
func BenchmarkAblationPurgePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunPurgePolicy(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Rows[2].FinalCDBSize), "cdb-full-policy")
	}
}

// BenchmarkAblationEvasion measures the §4.6 padding attack against the
// random-skip countermeasure.
func BenchmarkAblationEvasion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunEvasion(benchScale(), 64, []int{0, 512})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Rows[1].EvasionRate, "evasion-%-with-skip")
	}
}

// BenchmarkParallelEngine measures sharded-engine throughput as goroutines
// scale (the multi-queue-router story).
func BenchmarkParallelEngine(b *testing.B) {
	files, err := SyntheticCorpus(1, 30, 1<<10, 4<<10)
	if err != nil {
		b.Fatal(err)
	}
	pool := make([]corpus.File, len(files))
	for i, f := range files {
		pool[i] = corpus.File{Class: f.Class, Data: f.Data}
	}
	clf, err := core.Train(pool, core.TrainConfig{
		Kind: core.KindCART,
		Dataset: core.DatasetConfig{
			Widths: core.PhiPrimeCART, Method: core.MethodPrefix, BufferSize: 32,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	trace, err := packet.Generate(packet.TraceConfig{
		Flows: 2000, Duration: 60 * time.Second, UDPFraction: 0.2,
		CleanCloseFraction: 0.4, RSTFraction: 0.1,
		MinFlowBytes: 256, MaxFlowBytes: 4 << 10,
		MeanPacketGap: 50 * time.Millisecond, Seed: 9,
	}, corpus.NewGenerator(9))
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			pe, err := flow.NewParallelEngine(flow.EngineConfig{
				BufferSize: 32, Classifier: clf,
				CDB: flow.CDBConfig{PurgeOnClose: true},
			}, shards, nil)
			if err != nil {
				b.Fatal(err)
			}
			var next int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := atomic.AddInt64(&next, 1)
					p := &trace.Packets[int(i)%len(trace.Packets)]
					if _, err := pe.Process(p); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkProcessBatch measures the batched submission path against
// per-packet Process: one SHA-1 and one shard-routing pass per packet
// either way, but the batch amortizes call and locking overhead.
func BenchmarkProcessBatch(b *testing.B) {
	files, err := SyntheticCorpus(1, 30, 1<<10, 4<<10)
	if err != nil {
		b.Fatal(err)
	}
	pool := make([]corpus.File, len(files))
	for i, f := range files {
		pool[i] = corpus.File{Class: f.Class, Data: f.Data}
	}
	clf, err := core.Train(pool, core.TrainConfig{
		Kind: core.KindCART,
		Dataset: core.DatasetConfig{
			Widths: core.PhiPrimeCART, Method: core.MethodPrefix, BufferSize: 32,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	trace, err := packet.Generate(packet.TraceConfig{
		Flows: 500, Duration: 30 * time.Second, UDPFraction: 0.2,
		MinFlowBytes: 256, MaxFlowBytes: 2 << 10,
		MeanPacketGap: 50 * time.Millisecond, Seed: 11,
	}, corpus.NewGenerator(11))
	if err != nil {
		b.Fatal(err)
	}
	newEngine := func() *flow.ParallelEngine {
		pe, err := flow.NewParallelEngine(flow.EngineConfig{
			BufferSize: 32, Classifier: clf,
			CDB: flow.CDBConfig{PurgeOnClose: true},
		}, 4, nil)
		if err != nil {
			b.Fatal(err)
		}
		return pe
	}
	b.Run("single", func(b *testing.B) {
		pe := newEngine()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pe.Process(&trace.Packets[i%len(trace.Packets)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch-64", func(b *testing.B) {
		pe := newEngine()
		batch := make([]*packet.Packet, 0, 64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch = append(batch, &trace.Packets[i%len(trace.Packets)])
			if len(batch) == cap(batch) || i == b.N-1 {
				if _, err := pe.ProcessBatch(batch); err != nil {
					b.Fatal(err)
				}
				batch = batch[:0]
			}
		}
	})
}

// BenchmarkStreamEstimator measures the one-pass estimator's per-byte cost
// against buffering plus offline estimation.
func BenchmarkStreamEstimator(b *testing.B) {
	data := make([]byte, 1024)
	rand.New(rand.NewSource(3)).Read(data)
	b.Run("one-pass", func(b *testing.B) {
		s, err := entest.NewStream(0.25, 0.75, 2, len(data), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Reset()
			if _, err := s.Write(data); err != nil {
				b.Fatal(err)
			}
			_ = s.EstimateH()
		}
	})
	b.Run("buffered", func(b *testing.B) {
		est, err := entest.New(0.25, 0.75, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := est.EstimateH(data, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMulticlass compares DAGSVM against one-vs-one voting:
// prediction latency is the paper's reason for choosing DAGSVM.
func BenchmarkAblationMulticlass(b *testing.B) {
	files, err := SyntheticCorpus(1, 60, 2<<10, 4<<10)
	if err != nil {
		b.Fatal(err)
	}
	pool := make([]corpus.File, len(files))
	for i, f := range files {
		pool[i] = corpus.File{Class: f.Class, Data: f.Data}
	}
	ds, err := core.BuildDataset(pool, core.DatasetConfig{
		Widths: core.PhiPrimeSVM, Method: core.MethodPrefix, BufferSize: 256,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		mc   svm.MultiClass
	}{{"dag", svm.DAG}, {"vote", svm.Vote}} {
		model, err := svm.Train(ds, svm.Config{
			Kernel: svm.RBF{Gamma: 50}, C: 1000, MultiClass: mode.mc, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := model.Predict(ds.Samples[i%ds.Len()].Features); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCounting compares the fixed-array byte histogram (k=1
// fast path) against generic map-based k-gram counting at k=2.
func BenchmarkAblationCounting(b *testing.B) {
	data := make([]byte, 1024)
	rand.New(rand.NewSource(1)).Read(data)
	b.Run("array-k1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := entropy.H(data, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("map-k2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := entropy.H(data, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationExactVsEstimated compares exact and (δ,ε)-estimated
// entropy-vector extraction at b=1024 (the Table 3 trade-off as a
// micro-bench).
func BenchmarkAblationExactVsEstimated(b *testing.B) {
	data := make([]byte, 1024)
	rand.New(rand.NewSource(2)).Read(data)
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := entropy.VectorAt(data, core.PhiPrimeSVM); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("estimated", func(b *testing.B) {
		est, err := entest.New(0.25, 0.75, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := est.Vector(data, core.PhiPrimeSVM); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Component micro-benchmarks ---

func BenchmarkFlowIDHash(b *testing.B) {
	tuple := packet.FiveTuple{
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
		SrcPort: 1234, DstPort: 80, Transport: packet.TCP,
	}
	for i := 0; i < b.N; i++ {
		tuple.SrcPort = uint16(i)
		_ = flow.IDOf(tuple)
	}
}

func BenchmarkCDBLookup(b *testing.B) {
	cdb := flow.NewCDB(flow.CDBConfig{})
	tuple := packet.FiveTuple{SrcIP: [4]byte{1, 2, 3, 4}, Transport: packet.TCP}
	ids := make([]flow.ID, 10000)
	for i := range ids {
		tuple.SrcPort = uint16(i)
		tuple.DstPort = uint16(i >> 8)
		ids[i] = flow.IDOf(tuple)
		cdb.Insert(ids[i], corpus.Text, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cdb.Lookup(ids[i%len(ids)], time.Duration(i))
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	files, err := SyntheticCorpus(1, 30, 1<<10, 4<<10)
	if err != nil {
		b.Fatal(err)
	}
	clf, err := Train(files, WithModel(ModelCART), WithBufferSize(32))
	if err != nil {
		b.Fatal(err)
	}
	mon, err := NewMonitor(clf, WithMonitorBufferSize(32), WithPurging(4))
	if err != nil {
		b.Fatal(err)
	}
	trace, err := packet.Generate(packet.TraceConfig{
		Flows: 500, Duration: 30 * time.Second, UDPFraction: 0.2,
		CleanCloseFraction: 0.4, RSTFraction: 0.1,
		MinFlowBytes: 256, MaxFlowBytes: 8 << 10,
		MeanPacketGap: 50 * time.Millisecond, Seed: 7,
	}, corpus.NewGenerator(7))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mon.Process(&trace.Packets[i%len(trace.Packets)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCorpusGeneration(b *testing.B) {
	gen := corpus.NewGenerator(1)
	for _, class := range []corpus.Class{corpus.Text, corpus.Binary, corpus.Encrypted} {
		b.Run(class.String(), func(b *testing.B) {
			b.SetBytes(4096)
			for i := 0; i < b.N; i++ {
				if _, err := gen.File(class, 4096); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkClassifierPredict(b *testing.B) {
	files, err := SyntheticCorpus(1, 40, 1<<10, 2<<10)
	if err != nil {
		b.Fatal(err)
	}
	payload := files[0].Data[:64]
	for _, model := range []Model{ModelCART, ModelSVM} {
		clf, err := Train(files, WithModel(model), WithBufferSize(64))
		if err != nil {
			b.Fatal(err)
		}
		name := "cart"
		if model == ModelSVM {
			name = "svm"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := clf.Classify(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkQoSScheduler(b *testing.B) {
	for _, policy := range []qos.Policy{qos.FIFO, qos.StrictPriority, qos.WeightedRoundRobin} {
		b.Run(policy.String(), func(b *testing.B) {
			s, err := qos.NewScheduler(qos.Config{Policy: policy, LinkRate: 10 << 20})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				class := corpus.Class(i % corpus.NumClasses)
				if _, err := s.Enqueue(class, 512, time.Duration(i)*time.Microsecond); err != nil {
					b.Fatal(err)
				}
			}
			s.Drain()
		})
	}
}

func BenchmarkPcapWrite(b *testing.B) {
	cfg := packet.DefaultTraceConfig()
	cfg.Flows = 200
	cfg.Duration = 10 * time.Second
	cfg.MaxFlowBytes = 4 << 10
	trace, err := packet.Generate(cfg, corpus.NewGenerator(81))
	if err != nil {
		b.Fatal(err)
	}
	var total int
	for i := range trace.Packets {
		total += len(trace.Packets[i].Payload)
	}
	b.SetBytes(int64(total))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pcap.WriteTrace(io.Discard, trace); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStratifiedKFold(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]dataset.Sample, 3000)
	for i := range samples {
		samples[i] = dataset.Sample{Features: []float64{rng.Float64()}, Label: i % 3}
	}
	ds, err := dataset.New(samples, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.StratifiedKFold(10, rng); err != nil {
			b.Fatal(err)
		}
	}
}

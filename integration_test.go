package iustitia

// End-to-end integration tests: train on the synthetic corpus, replay
// synthetic gateway traces through the online monitor, and check the
// system-level properties the paper claims — ground-truth accuracy, the
// effect of header stripping, CDB boundedness under purging, and
// concurrency safety.

import (
	"sync"
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/packet"
)

// replayAccuracy trains a classifier, replays a trace through a monitor
// built with opts, and returns ground-truth flow accuracy.
func replayAccuracy(t *testing.T, traceSeed int64, opts ...MonitorOption) float64 {
	t.Helper()
	files, err := SyntheticCorpus(1, 80, 1<<10, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := Train(files, WithBufferSize(32), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(clf, append([]MonitorOption{
		WithMonitorBufferSize(32),
		WithIdleFlush(2 * time.Second),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}

	cfg := packet.DefaultTraceConfig()
	cfg.Flows = 400
	cfg.Seed = traceSeed
	trace, err := packet.Generate(cfg, corpus.NewGenerator(traceSeed))
	if err != nil {
		t.Fatal(err)
	}
	var last time.Duration
	for i := range trace.Packets {
		if _, err := mon.Process(&trace.Packets[i]); err != nil {
			t.Fatal(err)
		}
		last = trace.Packets[i].Time
	}
	if _, err := mon.FlushAll(last + time.Minute); err != nil {
		t.Fatal(err)
	}

	correct, labeled := 0, 0
	for tuple, info := range trace.Flows {
		got, ok := mon.Label(tuple)
		if !ok {
			continue
		}
		labeled++
		if got == info.Class {
			correct++
		}
	}
	if labeled < len(trace.Flows)*9/10 {
		t.Fatalf("only %d of %d flows labeled", labeled, len(trace.Flows))
	}
	return float64(correct) / float64(labeled)
}

func TestEndToEndTraceAccuracy(t *testing.T) {
	acc := replayAccuracy(t, 101, WithPurging(4), WithHeaderStripping(0))
	if acc < 0.65 {
		t.Errorf("end-to-end accuracy = %.3f, want >= 0.65", acc)
	}
}

func TestHeaderStrippingImprovesAccuracy(t *testing.T) {
	// 30% of trace flows carry HTTP text headers; without stripping they
	// are classified by their header bytes (paper §4.3's problem), so
	// stripping must improve ground-truth accuracy.
	withStrip := replayAccuracy(t, 102, WithHeaderStripping(0))
	withoutStrip := replayAccuracy(t, 102)
	if withStrip <= withoutStrip {
		t.Errorf("header stripping did not help: %.3f (strip) vs %.3f (raw)",
			withStrip, withoutStrip)
	}
}

func TestPurgingBoundsCDB(t *testing.T) {
	files, err := SyntheticCorpus(1, 60, 1<<10, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := Train(files, WithModel(ModelCART), WithBufferSize(32))
	if err != nil {
		t.Fatal(err)
	}
	build := func(opts ...MonitorOption) *Monitor {
		mon, err := NewMonitor(clf, append([]MonitorOption{
			WithMonitorBufferSize(32),
			WithIdleFlush(time.Second),
		}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return mon
	}
	purged := build(WithPurging(4))
	unpurged := build()

	cfg := packet.DefaultTraceConfig()
	cfg.Flows = 600
	cfg.Seed = 103
	trace, err := packet.Generate(cfg, corpus.NewGenerator(103))
	if err != nil {
		t.Fatal(err)
	}
	var nextFlush time.Duration = time.Second
	for i := range trace.Packets {
		p := &trace.Packets[i]
		for p.Time >= nextFlush {
			if _, err := purged.FlushIdle(nextFlush); err != nil {
				t.Fatal(err)
			}
			if _, err := unpurged.FlushIdle(nextFlush); err != nil {
				t.Fatal(err)
			}
			nextFlush += time.Second
		}
		if _, err := purged.Process(p); err != nil {
			t.Fatal(err)
		}
		if _, err := unpurged.Process(p); err != nil {
			t.Fatal(err)
		}
	}
	ps, us := purged.Stats(), unpurged.Stats()
	if ps.CDBSize >= us.CDBSize {
		t.Errorf("purging did not bound the CDB: %d (purged) vs %d (unpurged)",
			ps.CDBSize, us.CDBSize)
	}
	if us.CDBSize < 500 {
		t.Errorf("unpurged CDB = %d, expected to track ~600 total flows", us.CDBSize)
	}
}

func TestMonitorConcurrentAccess(t *testing.T) {
	// The engine claims concurrency safety; hammer it from several
	// goroutines with disjoint and overlapping flows (run with -race).
	files, err := SyntheticCorpus(1, 40, 1<<10, 2<<10)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := Train(files, WithModel(ModelCART), WithBufferSize(16))
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(clf, WithMonitorBufferSize(16), WithPurging(4))
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := make([]byte, 64)
			for i := range payload {
				payload[i] = byte(i * (w + 3))
			}
			for i := 0; i < 300; i++ {
				tp := FiveTuple{
					SrcIP: [4]byte{10, byte(w), byte(i >> 8), byte(i)},
					DstIP: [4]byte{192, 168, 0, 1},
					// Overlap half the flows across workers.
					SrcPort:   uint16(i % 150),
					DstPort:   80,
					Transport: packet.TCP,
				}
				p := &Packet{Tuple: tp, Time: time.Duration(i) * time.Millisecond, Payload: payload}
				if _, err := mon.Process(p); err != nil {
					errs <- err
					return
				}
				if i%50 == 0 {
					mon.Stats()
					if _, err := mon.FlushIdle(time.Duration(i) * time.Millisecond); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if mon.Stats().Classified == 0 {
		t.Error("no flows classified under concurrency")
	}
}

func TestAntiEvasionEndToEnd(t *testing.T) {
	// A padded flow: 64 bytes of high-entropy padding in front of text.
	// With anti-evasion random skip, a meaningful fraction of such flows
	// must classify on content rather than padding.
	files, err := SyntheticCorpus(1, 60, 1<<10, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := Train(files, WithBufferSize(32))
	if err != nil {
		t.Fatal(err)
	}
	gen := corpus.NewGenerator(104)
	padding := gen.Encrypted(64).Data
	text := gen.Text(4096).Data
	payload := append(append([]byte{}, padding...), text...)

	classifyFlows := func(mon *Monitor) int {
		textCount := 0
		for i := 0; i < 40; i++ {
			tp := FiveTuple{
				SrcIP: [4]byte{10, 0, 1, byte(i)}, DstIP: [4]byte{10, 0, 2, 1},
				SrcPort: uint16(3000 + i), DstPort: 443, Transport: packet.TCP,
			}
			v, err := mon.Process(&Packet{Tuple: tp, Time: 0, Payload: payload})
			if err != nil {
				t.Fatal(err)
			}
			if v.Classified && v.Queue == Text {
				textCount++
			}
		}
		return textCount
	}

	plain, err := NewMonitor(clf, WithMonitorBufferSize(32))
	if err != nil {
		t.Fatal(err)
	}
	hardened, err := NewMonitor(clf,
		WithMonitorBufferSize(32),
		WithAntiEvasion(512, 0),
		WithMonitorSeed(9),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := classifyFlows(plain); got != 0 {
		t.Fatalf("unhardened monitor saw through padding on %d flows (expected 0)", got)
	}
	if got := classifyFlows(hardened); got < 20 {
		t.Errorf("hardened monitor recovered only %d/40 padded flows", got)
	}
}

module iustitia

go 1.22

// Package iustitia identifies the content nature of network flows — text,
// binary, or encrypted — on the fly, from the first b bytes of payload,
// reproducing "Iustitia: An Information Theoretical Approach to High-speed
// Flow Nature Identification" (Khakpour & Liu, ICDCS 2009).
//
// The key observation is that text flows have the lowest byte-stream
// entropy, encrypted flows the highest, and binary flows sit in between.
// Iustitia computes an entropy vector — the normalized entropy of every
// run of k consecutive bytes, for a handful of widths k — over a small
// buffered prefix of each new flow and feeds it to a trained classifier
// (a CART decision tree or an RBF-kernel DAGSVM).
//
// # Training a classifier
//
//	files, err := iustitia.SyntheticCorpus(42, 200, 1<<10, 16<<10)
//	if err != nil { ... }
//	clf, err := iustitia.Train(files,
//		iustitia.WithModel(iustitia.ModelSVM),
//		iustitia.WithBufferSize(32),
//	)
//
// # Classifying payloads and flows
//
//	class, err := clf.Classify(payload) // text / binary / encrypted
//
//	mon, err := iustitia.NewMonitor(clf, iustitia.WithMonitorBufferSize(32))
//	verdict, err := mon.Process(pkt) // routes packets to per-class queues
package iustitia

import (
	"errors"
	"fmt"
	"io"
	"time"

	"iustitia/internal/core"
	"iustitia/internal/corpus"
	"iustitia/internal/entest"
	"iustitia/internal/flow"
	"iustitia/internal/ml/cart"
	"iustitia/internal/ml/svm"
	"iustitia/internal/packet"
	"iustitia/internal/persist"
)

// Class is the content nature of a payload or flow.
type Class = corpus.Class

// The three content natures.
const (
	Text      = corpus.Text
	Binary    = corpus.Binary
	Encrypted = corpus.Encrypted
)

// Packet and flow substrate types, re-exported for Monitor users.
type (
	// Packet is one captured packet with a virtual timestamp.
	Packet = packet.Packet
	// FiveTuple identifies a flow.
	FiveTuple = packet.FiveTuple
	// Verdict reports what the monitor did with one packet.
	Verdict = flow.Verdict
)

// Model selects the classifier family.
type Model int

// Supported classifier families.
const (
	// ModelCART is a Gini-grown classification tree.
	ModelCART Model = iota + 1
	// ModelSVM is a DAGSVM over RBF-kernel binary machines — the paper's
	// most accurate configuration.
	ModelSVM
)

// TrainingFile is one labeled corpus file.
type TrainingFile struct {
	Class Class
	Data  []byte
}

// SyntheticCorpus deterministically generates perClass labeled files of
// each class with sizes in [minSize, maxSize] — a stand-in for the paper's
// private file pool, with matching per-class entropy bands.
func SyntheticCorpus(seed int64, perClass, minSize, maxSize int) ([]TrainingFile, error) {
	pool, err := corpus.NewGenerator(seed).Pool(perClass, minSize, maxSize)
	if err != nil {
		return nil, err
	}
	files := make([]TrainingFile, len(pool))
	for i, f := range pool {
		files[i] = TrainingFile{Class: f.Class, Data: f.Data}
	}
	return files, nil
}

// options collects Train settings.
type options struct {
	model      Model
	widths     []int
	bufferSize int
	method     core.TrainingMethod
	threshold  int
	gamma      float64
	c          float64
	seed       int64
	epsilon    float64
	delta      float64
	estimate   bool
}

// Option configures Train.
type Option func(*options)

// WithModel selects the classifier family (default ModelSVM).
func WithModel(m Model) Option { return func(o *options) { o.model = m } }

// WithFeatureWidths sets the entropy feature widths (default the paper's
// deployment set φ′_SVM = {1, 2, 3, 5} for SVM and φ′_CART = {1, 3, 4, 5}
// for CART).
func WithFeatureWidths(widths []int) Option {
	return func(o *options) { o.widths = append([]int{}, widths...) }
}

// WithBufferSize sets b, the per-flow byte budget the classifier is
// trained for; training uses the first b bytes of every file (the paper's
// preferred H_b method). Default 32.
func WithBufferSize(b int) Option { return func(o *options) { o.bufferSize = b } }

// WithWholeFileTraining trains on entire files (H_F) instead of b-byte
// prefixes.
func WithWholeFileTraining() Option {
	return func(o *options) { o.method = core.MethodWholeFile }
}

// WithRandomOffsetTraining trains on b bytes starting at a random offset
// up to threshold (H_b′), hardening the model against unknown application
// headers of at most threshold bytes.
func WithRandomOffsetTraining(threshold int) Option {
	return func(o *options) {
		o.method = core.MethodRandomOffset
		o.threshold = threshold
	}
}

// WithSVMParams overrides the RBF kernel parameters (default the paper's
// γ=50, C=1000).
func WithSVMParams(gamma, c float64) Option {
	return func(o *options) { o.gamma, o.c = gamma, c }
}

// WithSeed fixes all training randomness.
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithEstimation switches feature extraction to the (δ,ε)-approximation
// streaming entropy estimator for widths >= 2, trading accuracy for
// counter space (paper §4.4).
func WithEstimation(epsilon, delta float64) Option {
	return func(o *options) {
		o.estimate = true
		o.epsilon, o.delta = epsilon, delta
	}
}

// Classifier labels payloads with their content nature.
type Classifier struct {
	inner *core.Classifier
}

// Train builds a classifier from labeled files.
func Train(files []TrainingFile, opts ...Option) (*Classifier, error) {
	if len(files) == 0 {
		return nil, errors.New("iustitia: no training files")
	}
	o := options{
		model:      ModelSVM,
		bufferSize: 32,
		method:     core.MethodPrefix,
		gamma:      50,
		c:          1000,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if len(o.widths) == 0 {
		if o.model == ModelCART {
			o.widths = core.PhiPrimeCART
		} else {
			o.widths = core.PhiPrimeSVM
		}
	}

	pool := make([]corpus.File, len(files))
	for i, f := range files {
		if f.Class < Text || f.Class > Encrypted {
			return nil, fmt.Errorf("iustitia: file %d has unknown class %d", i, int(f.Class))
		}
		pool[i] = corpus.File{Class: f.Class, Data: f.Data}
	}

	cfg := core.TrainConfig{
		Dataset: core.DatasetConfig{
			Widths:          o.widths,
			Method:          o.method,
			BufferSize:      o.bufferSize,
			HeaderThreshold: o.threshold,
			Seed:            o.seed,
		},
		CART: cart.Config{MinLeaf: 2},
		SVM: svm.Config{
			Kernel: svm.RBF{Gamma: o.gamma},
			C:      o.c,
			Seed:   o.seed,
		},
	}
	if o.estimate {
		// Train on estimated vectors so training features match what the
		// estimator will produce online (the paper's §4.4.2 re-selection).
		trainEst, err := entest.New(o.epsilon, o.delta, o.seed)
		if err != nil {
			return nil, err
		}
		cfg.Dataset.Estimator = trainEst
	}
	switch o.model {
	case ModelCART:
		cfg.Kind = core.KindCART
	case ModelSVM:
		cfg.Kind = core.KindSVM
	default:
		return nil, fmt.Errorf("iustitia: unknown model %d", int(o.model))
	}

	inner, err := core.Train(pool, cfg)
	if err != nil {
		return nil, err
	}
	c := &Classifier{inner: inner}
	if o.estimate {
		if err := c.EnableEstimation(o.epsilon, o.delta, o.seed); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Classify labels a payload prefix. The payload must be at least as long
// as the classifier's widest feature.
func (c *Classifier) Classify(payload []byte) (Class, error) {
	return c.inner.Classify(payload)
}

// ClassifyVector labels an already-computed entropy vector whose entries
// correspond to FeatureWidths — e.g. one maintained online by a streaming
// estimator.
func (c *Classifier) ClassifyVector(vec []float64) (Class, error) {
	return c.inner.ClassifyVector(vec)
}

// Features returns the entropy vector the classifier extracts from a
// payload, mostly useful for inspection and debugging.
func (c *Classifier) Features(payload []byte) ([]float64, error) {
	return c.inner.Features(payload)
}

// FeatureWidths returns the entropy widths (k values) in use.
func (c *Classifier) FeatureWidths() []int { return c.inner.Widths() }

// EnableEstimation switches feature extraction to the (δ,ε)-approximation
// estimator at runtime.
func (c *Classifier) EnableEstimation(epsilon, delta float64, seed int64) error {
	est, err := entest.New(epsilon, delta, seed)
	if err != nil {
		return err
	}
	c.inner.UseEstimator(est)
	return nil
}

// DisableEstimation reverts to exact entropy calculation.
func (c *Classifier) DisableEstimation() { c.inner.UseEstimator(nil) }

// Swap atomically installs next's trained model as this classifier's,
// returning a classifier holding the previous model so the caller can
// swap back. Safe under concurrent Classify calls — in-flight
// classifications finish on whichever model they started with — which is
// what lets a serving deployment hot-swap a retrained model without
// draining the stream. The estimation setting is not swapped.
func (c *Classifier) Swap(next *Classifier) (prev *Classifier) {
	return &Classifier{inner: c.inner.Swap(next.inner)}
}

// Save persists the classifier as JSON.
func (c *Classifier) Save(w io.Writer) error { return c.inner.Save(w) }

// LoadClassifier restores a classifier written by Save.
func LoadClassifier(r io.Reader) (*Classifier, error) {
	inner, err := core.Load(r)
	if err != nil {
		return nil, err
	}
	return &Classifier{inner: inner}, nil
}

// SaveSnapshot persists the classifier as a versioned, CRC-checksummed
// binary snapshot, written atomically (write-temp-then-rename): a crash
// mid-write can never corrupt an existing snapshot at path.
func (c *Classifier) SaveSnapshot(path string) error {
	payload, err := c.inner.EncodeSnapshot()
	if err != nil {
		return err
	}
	return persist.SaveFile(path, persist.KindClassifier, payload)
}

// LoadClassifierSnapshot restores a classifier written by SaveSnapshot.
// A truncated, bit-flipped, wrong-version, or wrong-kind snapshot
// returns a typed error (persist.ErrCorrupt, persist.ErrVersion,
// persist.ErrKind) — never a silently wrong model.
func LoadClassifierSnapshot(path string) (*Classifier, error) {
	payload, err := persist.LoadFile(path, persist.KindClassifier)
	if err != nil {
		return nil, err
	}
	inner, err := core.DecodeSnapshot(payload)
	if err != nil {
		return nil, err
	}
	return &Classifier{inner: inner}, nil
}

// EvictionPolicy selects what a capped monitor does when a new flow
// arrives at a full pending table.
type EvictionPolicy = flow.EvictPolicy

// The eviction policies for WithPendingCap.
const (
	// EvictOldest drops the least-recently-active pending flow.
	EvictOldest = flow.EvictOldest
	// EvictClassifyPartial classifies the least-recently-active pending
	// flow on its partial buffer.
	EvictClassifyPartial = flow.EvictClassifyPartial
	// EvictShed refuses the new flow and routes it to the fallback class.
	EvictShed = flow.EvictShed
)

// monitorOptions collects Monitor settings.
type monitorOptions struct {
	bufferSize      int
	stripHeaders    bool
	headerThreshold int
	idleFlush       time.Duration
	purgeOnClose    bool
	purgeInactive   bool
	inactivityN     float64
	randomSkipMax   int
	reclassifyAfter time.Duration
	seed            int64
	maxPending      int
	eviction        EvictionPolicy
	fallback        Class
	tolerate        bool
	tripAfter       int
	probeEvery      int
	labelCap        int
	cdbCap          int
	checkpointEvery int
	onCheckpoint    func([]byte)
}

// MonitorOption configures NewMonitor.
type MonitorOption func(*monitorOptions)

// WithMonitorBufferSize sets b, the bytes buffered per new flow before
// classification (default 32, the paper's fast configuration).
func WithMonitorBufferSize(b int) MonitorOption {
	return func(o *monitorOptions) { o.bufferSize = b }
}

// WithHeaderStripping removes recognized application-layer headers
// (HTTP/SMTP/POP3/IMAP/FTP) before buffering, and skips threshold bytes of
// flows whose header is not recognized.
func WithHeaderStripping(threshold int) MonitorOption {
	return func(o *monitorOptions) {
		o.stripHeaders = true
		o.headerThreshold = threshold
	}
}

// WithIdleFlush classifies flows with partially filled buffers after they
// have been quiet this long.
func WithIdleFlush(d time.Duration) MonitorOption {
	return func(o *monitorOptions) { o.idleFlush = d }
}

// WithPurging enables both CDB purge policies: removal on FIN/RST and the
// n·λ inactivity rule (the paper finds n = 4 optimal).
func WithPurging(n float64) MonitorOption {
	return func(o *monitorOptions) {
		o.purgeOnClose = true
		o.purgeInactive = true
		o.inactivityN = n
	}
}

// WithAntiEvasion enables the paper's §4.6 countermeasures against flows
// that prepend deceiving padding: each new flow skips a uniform random
// number of bytes in [0, maxSkip] before buffering, and classification
// decisions expire after reclassifyAfter (zero keeps them forever),
// forcing long-lived flows to be re-examined.
func WithAntiEvasion(maxSkip int, reclassifyAfter time.Duration) MonitorOption {
	return func(o *monitorOptions) {
		o.randomSkipMax = maxSkip
		o.reclassifyAfter = reclassifyAfter
	}
}

// WithMonitorSeed fixes the monitor's randomness (the anti-evasion skip
// draws).
func WithMonitorSeed(seed int64) MonitorOption {
	return func(o *monitorOptions) { o.seed = seed }
}

// WithPendingCap bounds the pending-flow table at maxFlows so monitor
// memory stays O(maxFlows) under flow churn, applying policy when a new
// flow arrives at a full table. An inline deployment should always set
// this.
func WithPendingCap(maxFlows int, policy EvictionPolicy) MonitorOption {
	return func(o *monitorOptions) {
		o.maxPending = maxFlows
		o.eviction = policy
	}
}

// WithFallbackClass sets the queue used for shed flows and tolerated
// classification failures (default Text).
func WithFallbackClass(c Class) MonitorOption {
	return func(o *monitorOptions) { o.fallback = c }
}

// WithFaultTolerance routes flows whose classification errored or
// panicked to the fallback class instead of surfacing the error, and
// arms the degraded-mode breaker: after tripAfter consecutive failures
// the monitor short-circuits to the fallback queue, probing the real
// classifier every probeEvery-th flow until it recovers. Zero values pick
// the defaults (8 and 64).
func WithFaultTolerance(tripAfter, probeEvery int) MonitorOption {
	return func(o *monitorOptions) {
		o.tolerate = true
		o.tripAfter = tripAfter
		o.probeEvery = probeEvery
	}
}

// WithLabelCap bounds the ground-truth label map behind Label: n > 0
// keeps the n most recently labelled flows, negative disables label
// tracking entirely (the memory-tightest choice), 0 keeps every label
// forever (the default).
func WithLabelCap(n int) MonitorOption {
	return func(o *monitorOptions) { o.labelCap = n }
}

// WithCDBCap hard-caps the classification database at n records,
// evicting the oldest under pressure; evicted flows are simply
// reclassified if they come back.
func WithCDBCap(n int) MonitorOption {
	return func(o *monitorOptions) { o.cdbCap = n }
}

// WithCheckpoint fires fn with a durable snapshot of the monitor's state
// (counters + classification database) after every n classified flows.
// The snapshot bytes are a checkpoint payload: persist them with
// persist.SaveFile(path, persist.KindCheckpoint, snapshot) or feed them
// back through Restore after a restart. fn runs synchronously on the
// packet path — hand the bytes off quickly.
func WithCheckpoint(n int, fn func(snapshot []byte)) MonitorOption {
	return func(o *monitorOptions) {
		o.checkpointEvery = n
		o.onCheckpoint = fn
	}
}

// Monitor is the online flow-classification pipeline of the paper's
// Figure 1: it hashes packet headers to flow IDs, answers repeat packets
// from the classification database, buffers new flows up to b bytes,
// classifies them, and routes packets to per-class output queues.
type Monitor struct {
	engine *flow.Engine
}

// NewMonitor builds a monitor around a trained classifier.
func NewMonitor(c *Classifier, opts ...MonitorOption) (*Monitor, error) {
	if c == nil {
		return nil, errors.New("iustitia: nil classifier")
	}
	o := monitorOptions{bufferSize: 32, inactivityN: 4}
	for _, opt := range opts {
		opt(&o)
	}
	engine, err := flow.NewEngine(flow.EngineConfig{
		BufferSize:        o.bufferSize,
		Classifier:        c.inner,
		StripKnownHeaders: o.stripHeaders,
		HeaderThreshold:   o.headerThreshold,
		IdleFlush:         o.idleFlush,
		RandomSkipMax:     o.randomSkipMax,
		Seed:              o.seed,
		MaxPending:        o.maxPending,
		Eviction:          o.eviction,
		FallbackClass:     o.fallback,
		LabelCap:          o.labelCap,
		CheckpointEvery:   o.checkpointEvery,
		OnCheckpoint:      o.onCheckpoint,
		Faults: flow.FaultPolicy{
			Tolerate:   o.tolerate,
			TripAfter:  o.tripAfter,
			ProbeEvery: o.probeEvery,
		},
		CDB: flow.CDBConfig{
			PurgeOnClose:  o.purgeOnClose,
			PurgeInactive: o.purgeInactive,
			N:             o.inactivityN,
			MaxAge:        o.reclassifyAfter,
			MaxRecords:    o.cdbCap,
		},
	})
	if err != nil {
		return nil, err
	}
	return &Monitor{engine: engine}, nil
}

// Process handles one packet at its virtual capture time.
func (m *Monitor) Process(p *Packet) (Verdict, error) { return m.engine.Process(p) }

// FlushIdle classifies pending flows quiet longer than the configured idle
// window, returning how many were classified.
func (m *Monitor) FlushIdle(now time.Duration) (int, error) { return m.engine.FlushIdle(now) }

// FlushAll classifies every pending flow — call at end of capture.
func (m *Monitor) FlushAll(now time.Duration) (int, error) { return m.engine.FlushAll(now) }

// Label returns the monitor's decision for a flow, if it has one.
func (m *Monitor) Label(t FiveTuple) (Class, bool) { return m.engine.Label(t) }

// Checkpoint returns an on-demand durable snapshot of the monitor's
// state (counters + classification database).
func (m *Monitor) Checkpoint() []byte { return m.engine.ExportCheckpoint() }

// Restore folds a snapshot produced by Checkpoint (or a WithCheckpoint
// hook) into this monitor: classification counts continue and flows in
// the restored database are answered without re-classification. A
// corrupt snapshot returns an error wrapping persist.ErrCorrupt and
// leaves the monitor unchanged.
func (m *Monitor) Restore(snapshot []byte) error { return m.engine.ImportCheckpoint(snapshot) }

// Stats summarizes monitor activity.
type Stats struct {
	// Pending is the number of flows still filling their buffers.
	Pending int
	// Classified is the number of flows labeled so far.
	Classified int
	// QueueCounts are packets routed per class queue, indexed by Class.
	QueueCounts [corpus.NumClasses]int
	// CDBSize is the number of live classification-database records.
	CDBSize int
	// Shed counts flows refused admission at the pending cap and routed
	// to the fallback queue.
	Shed int
	// Evicted counts pending flows force-retired to respect the cap.
	Evicted int
	// Failed counts classifier errors and recovered classifier panics.
	Failed int
	// Fallback counts flows labelled the fallback class because their
	// classification failed or the monitor was degraded.
	Fallback int
	// Degraded reports whether the monitor is currently short-circuiting
	// classification to the fallback queue.
	Degraded bool
}

// FlowFill describes the buffering cost of one classified flow: how many
// data packets were needed to fill the b-byte buffer (the paper's c) and
// the virtual time from the flow's first packet to its classification
// (τ_b).
type FlowFill struct {
	Packets int
	Delay   time.Duration
}

// FillStats returns per-flow buffering measurements — the Figure 10
// quantities — for every flow classified so far.
func (m *Monitor) FillStats() []FlowFill {
	raw := m.engine.FillStats()
	out := make([]FlowFill, len(raw))
	for i, f := range raw {
		out[i] = FlowFill{Packets: f.Packets, Delay: f.Delay}
	}
	return out
}

// Stats returns a snapshot of monitor counters.
func (m *Monitor) Stats() Stats {
	s := m.engine.Stats()
	return Stats{
		Pending:     s.Pending,
		Classified:  s.Classified,
		QueueCounts: s.QueueCounts,
		CDBSize:     s.CDB.Size,
		Shed:        s.Shed,
		Evicted:     s.Evicted,
		Failed:      s.Failed,
		Fallback:    s.Fallback,
		Degraded:    s.Degraded > 0,
	}
}

package iustitia

import (
	"bytes"
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/packet"
)

func trainedClassifier(t *testing.T, opts ...Option) *Classifier {
	t.Helper()
	files, err := SyntheticCorpus(1, 40, 1<<10, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Train(files, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSyntheticCorpus(t *testing.T) {
	files, err := SyntheticCorpus(2, 5, 256, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 15 {
		t.Fatalf("len = %d, want 15", len(files))
	}
	counts := map[Class]int{}
	for _, f := range files {
		counts[f.Class]++
	}
	if counts[Text] != 5 || counts[Binary] != 5 || counts[Encrypted] != 5 {
		t.Errorf("class counts = %v", counts)
	}
	if _, err := SyntheticCorpus(2, 0, 1, 2); err == nil {
		t.Error("perClass=0: want error")
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil); err == nil {
		t.Error("no files: want error")
	}
	bad := []TrainingFile{{Class: Class(7), Data: []byte("xxxx")}}
	if _, err := Train(bad); err == nil {
		t.Error("bad class: want error")
	}
	files, err := SyntheticCorpus(3, 3, 256, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(files, WithModel(Model(9))); err == nil {
		t.Error("bad model: want error")
	}
}

func TestTrainDefaultsAndClassify(t *testing.T) {
	c := trainedClassifier(t)
	if got := c.FeatureWidths(); len(got) != 4 {
		t.Errorf("default widths = %v, want the 4-feature φ′ set", got)
	}
	files, err := SyntheticCorpus(99, 20, 1<<10, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, f := range files {
		got, err := c.Classify(f.Data[:32])
		if err != nil {
			t.Fatal(err)
		}
		if got == f.Class {
			correct++
		}
	}
	// The paper reports 86% at b=32; demand comfortably above chance.
	if frac := float64(correct) / float64(len(files)); frac < 0.6 {
		t.Errorf("held-out accuracy = %v, want >= 0.6", frac)
	}
}

func TestTrainCARTModel(t *testing.T) {
	c := trainedClassifier(t, WithModel(ModelCART), WithBufferSize(64))
	if _, err := c.Classify(bytes.Repeat([]byte("ab"), 32)); err != nil {
		t.Fatal(err)
	}
}

func TestClassifierFeatures(t *testing.T) {
	c := trainedClassifier(t)
	vec, err := c.Features(bytes.Repeat([]byte{0xAA}, 64))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range vec {
		if h != 0 {
			t.Errorf("constant payload features = %v, want all zero", vec)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := trainedClassifier(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadClassifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("hello world "), 8)
	want, err := c.Classify(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Classify(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip changed classification: %v vs %v", got, want)
	}
}

func TestEstimationToggle(t *testing.T) {
	c := trainedClassifier(t, WithBufferSize(1024))
	if err := c.EnableEstimation(0.25, 0.5, 1); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if _, err := c.Classify(payload); err != nil {
		t.Fatal(err)
	}
	c.DisableEstimation()
	if _, err := c.Classify(payload); err != nil {
		t.Fatal(err)
	}
	if err := c.EnableEstimation(2, 0.5, 1); err == nil {
		t.Error("epsilon=2: want error")
	}
}

func TestTrainWithEstimationOption(t *testing.T) {
	files, err := SyntheticCorpus(4, 10, 2048, 2048)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Train(files, WithModel(ModelCART), WithBufferSize(1024),
		WithEstimation(0.5, 0.5), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Classify(files[0].Data[:1024]); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorEndToEnd(t *testing.T) {
	c := trainedClassifier(t, WithBufferSize(32))
	mon, err := NewMonitor(c,
		WithMonitorBufferSize(32),
		WithPurging(4),
		WithIdleFlush(time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}

	tp := FiveTuple{SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
		SrcPort: 4444, DstPort: 443, Transport: packet.TCP}
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	v, err := mon.Process(&Packet{Tuple: tp, Time: 0, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Classified || !v.Routed {
		t.Errorf("verdict = %+v, want classified+routed", v)
	}
	if _, ok := mon.Label(tp); !ok {
		t.Error("flow not labeled after classification")
	}
	stats := mon.Stats()
	if stats.Classified != 1 || stats.CDBSize != 1 {
		t.Errorf("stats = %+v", stats)
	}

	// Second packet hits the CDB.
	v, err = mon.Process(&Packet{Tuple: tp, Time: time.Millisecond, Payload: []byte("more")})
	if err != nil {
		t.Fatal(err)
	}
	if !v.FromCDB {
		t.Errorf("verdict = %+v, want CDB hit", v)
	}

	// FIN purges.
	_, err = mon.Process(&Packet{Tuple: tp, Time: time.Second, Flags: packet.FlagFIN})
	if err != nil {
		t.Fatal(err)
	}
	if got := mon.Stats().CDBSize; got != 0 {
		t.Errorf("CDBSize after FIN = %d, want 0", got)
	}
}

func TestMonitorFlushes(t *testing.T) {
	c := trainedClassifier(t, WithBufferSize(32))
	mon, err := NewMonitor(c, WithMonitorBufferSize(1024), WithIdleFlush(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	tp := FiveTuple{SrcIP: [4]byte{1, 1, 1, 1}, DstIP: [4]byte{2, 2, 2, 2},
		SrcPort: 1, DstPort: 2, Transport: packet.UDP}
	payload := bytes.Repeat([]byte("abcdefgh"), 8)
	if _, err := mon.Process(&Packet{Tuple: tp, Time: 0, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	n, err := mon.FlushIdle(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("FlushIdle = %d, want 1", n)
	}
	n, err = mon.FlushAll(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("FlushAll after idle flush = %d, want 0", n)
	}
}

func TestMonitorFillStats(t *testing.T) {
	c := trainedClassifier(t, WithBufferSize(32))
	mon, err := NewMonitor(c, WithMonitorBufferSize(32))
	if err != nil {
		t.Fatal(err)
	}
	tp := FiveTuple{SrcIP: [4]byte{9, 9, 9, 9}, DstIP: [4]byte{8, 8, 8, 8},
		SrcPort: 1, DstPort: 2, Transport: packet.TCP}
	payload := bytes.Repeat([]byte{0x5a, 0x1b}, 16)
	if _, err := mon.Process(&Packet{Tuple: tp, Time: 0, Payload: payload[:16]}); err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Process(&Packet{Tuple: tp, Time: 30 * time.Millisecond, Payload: payload[:16]}); err != nil {
		t.Fatal(err)
	}
	fills := mon.FillStats()
	if len(fills) != 1 {
		t.Fatalf("fills = %d, want 1", len(fills))
	}
	if fills[0].Packets != 2 || fills[0].Delay != 30*time.Millisecond {
		t.Errorf("fill = %+v", fills[0])
	}
}

func TestNewMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(nil); err == nil {
		t.Error("nil classifier: want error")
	}
	c := trainedClassifier(t)
	if _, err := NewMonitor(c, WithMonitorBufferSize(-1)); err == nil {
		t.Error("negative buffer: want error")
	}
}

func TestClassConstantsAlign(t *testing.T) {
	if Text != corpus.Text || Binary != corpus.Binary || Encrypted != corpus.Encrypted {
		t.Error("re-exported class constants diverge from internal values")
	}
}

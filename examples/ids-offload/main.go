// IDS offload: the paper's intrusion-detection motivation. A deep-packet
// -inspection engine holds text-related signatures (SQL injection, script
// tags) and binary-related signatures (shellcode stubs, executable
// headers). Applying every signature to every flow is the baseline;
// Iustitia routes each flow to only the signature set matching its nature,
// cutting signature evaluations roughly in half without losing matches on
// correctly classified flows.
//
// Run with:
//
//	go run ./examples/ids-offload
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"iustitia"
	"iustitia/internal/corpus"
	"iustitia/internal/packet"
)

// signature is one byte-pattern rule with the flow nature it applies to.
type signature struct {
	name    string
	pattern []byte
	nature  iustitia.Class
}

func signatures() []signature {
	return []signature{
		{"sql-injection", []byte("' OR 1=1"), iustitia.Text},
		{"script-tag", []byte("<script>"), iustitia.Text},
		{"path-traversal", []byte("../../"), iustitia.Text},
		{"xss-onerror", []byte("onerror="), iustitia.Text},
		{"elf-header", []byte{0x7f, 'E', 'L', 'F'}, iustitia.Binary},
		{"pe-header", []byte("MZ\x90\x00"), iustitia.Binary},
		{"shellcode-nop", bytes.Repeat([]byte{0x90}, 16), iustitia.Binary},
		{"zip-bomb-marker", []byte("PK\x03\x04"), iustitia.Binary},
	}
}

func main() {
	files, err := iustitia.SyntheticCorpus(13, 150, 1<<10, 16<<10)
	if err != nil {
		log.Fatal(err)
	}
	clf, err := iustitia.Train(files, iustitia.WithBufferSize(32))
	if err != nil {
		log.Fatal(err)
	}
	mon, err := iustitia.NewMonitor(clf,
		iustitia.WithMonitorBufferSize(32),
		iustitia.WithHeaderStripping(0),
		iustitia.WithPurging(4),
		iustitia.WithIdleFlush(2*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}

	cfg := packet.DefaultTraceConfig()
	cfg.Flows = 800
	cfg.Seed = 23
	trace, err := packet.Generate(cfg, corpus.NewGenerator(23))
	if err != nil {
		log.Fatal(err)
	}

	sigs := signatures()
	var (
		baselineEvals, offloadEvals   int
		baselineMatches, offloadMatch int
	)
	for i := range trace.Packets {
		p := &trace.Packets[i]
		verdict, err := mon.Process(p)
		if err != nil {
			log.Fatal(err)
		}
		if !p.IsData() {
			continue
		}
		for _, sig := range sigs {
			// Baseline: every signature inspects every data packet.
			baselineEvals++
			hit := bytes.Contains(p.Payload, sig.pattern)
			if hit {
				baselineMatches++
			}
			// Offload: skip signatures whose nature does not match the
			// flow's label. Unrouted (still-buffering) packets are
			// inspected by everything, as a real IDS would.
			if !verdict.Routed || verdict.Queue == sig.nature ||
				verdict.Queue == iustitia.Encrypted {
				// Encrypted flows get both sets in this policy: they are
				// opaque, so the IDS treats them conservatively (a real
				// deployment might instead skip DPI and rate-limit).
				offloadEvals++
				if hit {
					offloadMatch++
				}
			}
		}
	}

	fmt.Printf("signatures: %d (%d text-related, %d binary-related)\n",
		len(sigs), 4, 4)
	fmt.Printf("baseline:   %9d signature evaluations, %d matches\n",
		baselineEvals, baselineMatches)
	fmt.Printf("offloaded:  %9d signature evaluations, %d matches\n",
		offloadEvals, offloadMatch)
	fmt.Printf("evaluation reduction: %.1f%%  (matches retained: %.1f%%)\n",
		100*(1-float64(offloadEvals)/float64(baselineEvals)),
		100*float64(offloadMatch)/float64(max(1, baselineMatches)))
	stats := mon.Stats()
	fmt.Printf("flows classified online: %d (CDB size %d)\n", stats.Classified, stats.CDBSize)
}

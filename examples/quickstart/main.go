// Quickstart: train an Iustitia classifier and identify the nature of a
// few payloads.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"compress/flate"
	"crypto/rand"
	"fmt"
	"log"

	"iustitia"
)

func main() {
	// 1. Get labeled training data. The library ships a deterministic
	// synthetic corpus with the same per-class entropy bands as the
	// paper's file pool; in production you would label your own files.
	files, err := iustitia.SyntheticCorpus(42, 200, 1<<10, 16<<10)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train. Defaults follow the paper's deployed configuration:
	// DAGSVM with an RBF kernel (γ=50, C=1000), entropy features
	// <h1,h2,h3,h5>, trained on the first 32 bytes of every file.
	clf, err := iustitia.Train(files,
		iustitia.WithModel(iustitia.ModelSVM),
		iustitia.WithBufferSize(32),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Classify payload prefixes.
	encrypted := make([]byte, 64)
	if _, err := rand.Read(encrypted); err != nil {
		log.Fatal(err)
	}
	var compressed bytes.Buffer
	w, err := flate.NewWriter(&compressed, flate.BestCompression)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := w.Write([]byte("a multimedia attachment, compressed before transfer, compressed before transfer")); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	payloads := map[string][]byte{
		"chat message":    []byte("hey, are we still meeting for lunch at the usual place today?"),
		"html page":       []byte("<!DOCTYPE html><html><head><title>billing portal</title></head>"),
		"ciphertext":      encrypted,
		"compressed blob": compressed.Bytes(),
	}
	for name, payload := range payloads {
		class, err := clf.Classify(payload[:32])
		if err != nil {
			log.Fatal(err)
		}
		vec, err := clf.Features(payload[:32])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s -> %-10s (entropy vector %.3v)\n", name, class, vec)
	}
}

// QoS router: the paper's network-monitoring motivation. An ISP serving a
// bank gives encrypted flows (likely transactions) priority over bulk
// binary transfers; Iustitia supplies the per-flow nature labels online
// and the qos scheduler simulates the rate-limited egress under FIFO,
// strict-priority, and weighted-round-robin disciplines.
//
// Run with:
//
//	go run ./examples/qos-router
package main

import (
	"fmt"
	"log"
	"time"

	"iustitia"
	"iustitia/internal/corpus"
	"iustitia/internal/packet"
	"iustitia/internal/qos"
)

// linkRate models the egress bottleneck in bytes per second — set just
// above the trace's average offered load (~120 KB/s) so traffic bursts
// congest the link and the disciplines differ.
const linkRate = 144 << 10

func main() {
	files, err := iustitia.SyntheticCorpus(7, 150, 1<<10, 16<<10)
	if err != nil {
		log.Fatal(err)
	}
	clf, err := iustitia.Train(files, iustitia.WithBufferSize(32))
	if err != nil {
		log.Fatal(err)
	}

	cfg := packet.DefaultTraceConfig()
	cfg.Flows = 1200
	cfg.Seed = 11
	trace, err := packet.Generate(cfg, corpus.NewGenerator(11))
	if err != nil {
		log.Fatal(err)
	}

	for _, policy := range []qos.Policy{qos.FIFO, qos.StrictPriority, qos.WeightedRoundRobin} {
		mon, err := iustitia.NewMonitor(clf,
			iustitia.WithMonitorBufferSize(32),
			iustitia.WithHeaderStripping(0),
			iustitia.WithPurging(4),
			iustitia.WithIdleFlush(2*time.Second),
		)
		if err != nil {
			log.Fatal(err)
		}
		schedCfg := qos.Config{Policy: policy, LinkRate: linkRate}
		// WRR: encrypted gets the lion's share, binary the leftovers.
		schedCfg.Weights[iustitia.Encrypted] = 6
		schedCfg.Weights[iustitia.Text] = 3
		schedCfg.Weights[iustitia.Binary] = 1
		sched, err := qos.NewScheduler(schedCfg)
		if err != nil {
			log.Fatal(err)
		}

		for i := range trace.Packets {
			p := &trace.Packets[i]
			verdict, err := mon.Process(p)
			if err != nil {
				log.Fatal(err)
			}
			if !verdict.Routed || !p.IsData() {
				continue
			}
			if _, err := sched.Enqueue(verdict.Queue, len(p.Payload), p.Time); err != nil {
				log.Fatal(err)
			}
		}
		sched.Drain()

		fmt.Printf("%s egress @ %d KB/s:\n", policy, linkRate>>10)
		stats := sched.Stats()
		for class := iustitia.Text; class <= iustitia.Encrypted; class++ {
			st := stats[class]
			fmt.Printf("  %-10s served %5d pkts %6.1f MB  mean queueing delay %9s\n",
				class, st.Served, float64(st.Bytes)/(1<<20),
				st.MeanDelay().Round(10*time.Microsecond))
		}
	}
	fmt.Println("\nstrict priority and WRR pull the encrypted (banking) class ahead of")
	fmt.Println("the bulk binary class, using only Iustitia's on-the-fly labels.")
}

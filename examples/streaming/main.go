// Streaming: per-packet entropy estimation without buffering. A router
// that cannot afford even the b-byte flow buffer can run the one-pass
// (δ,ε)-estimator: every payload byte updates reservoir-sampled counters,
// and the entropy vector is available at any instant. This example also
// demonstrates pcap interop — the synthetic trace is exported as a
// tcpdump-readable capture and read back before processing.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"bytes"
	"fmt"
	"log"

	"iustitia"
	"iustitia/internal/corpus"
	"iustitia/internal/entest"
	"iustitia/internal/packet"
	"iustitia/internal/pcap"
)

func main() {
	// Train a classifier once; we will feed it streamed entropy vectors.
	files, err := iustitia.SyntheticCorpus(3, 120, 1<<10, 8<<10)
	if err != nil {
		log.Fatal(err)
	}
	// Training with estimation enabled matches the training features to
	// the noisy streamed features the router will produce (the paper's
	// §4.4.2 re-selection on estimated vectors).
	clf, err := iustitia.Train(files,
		iustitia.WithModel(iustitia.ModelCART),
		iustitia.WithBufferSize(1024),
		iustitia.WithEstimation(0.25, 0.75),
	)
	if err != nil {
		log.Fatal(err)
	}
	widths := clf.FeatureWidths()

	// Generate a small trace and round-trip it through the pcap format,
	// exactly as if it had been captured off the wire by tcpdump.
	cfg := packet.DefaultTraceConfig()
	cfg.Flows = 120
	cfg.Seed = 5
	cfg.HTTPHeaderFraction = 0
	trace, err := packet.Generate(cfg, corpus.NewGenerator(5))
	if err != nil {
		log.Fatal(err)
	}
	var capture bytes.Buffer
	if err := pcap.WriteTrace(&capture, trace); err != nil {
		log.Fatal(err)
	}
	packets, err := pcap.Read(&capture)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %d packets back from a %0.1f MB pcap capture\n",
		len(packets), float64(capture.Len())/(1<<20))

	// One StreamVector per flow: consume payloads packet by packet; after
	// ~1 KiB of payload, classify from the streamed vector. The active
	// table is bounded the way an inline router's must be: at most
	// maxActive flows hold counters at once, and admitting a flow past the
	// cap classifies the oldest active flow early, on whatever its vector
	// has streamed so far (the counters are then released).
	const budget = 1024
	const maxActive = 6
	type flowState struct {
		vec     *entest.StreamVector
		seen    int
		done    bool
		labeled bool
		label   iustitia.Class
	}
	flows := make(map[packet.FiveTuple]*flowState)
	var active []packet.FiveTuple // admission order; oldest first
	evictions := 0
	tooShort := 0
	counters := 0 // per-flow counter cost, sampled from the first vector
	settle := func(st *flowState) {
		st.done = true
		vec, err := st.vec.Vector()
		st.vec = nil // release the counters: done flows keep only a label
		if err != nil {
			// Too few bytes for the widest feature: no honest vector
			// exists, so the flow stays unlabeled (the buffered path
			// reports the same entropy.ErrShortSequence here).
			tooShort++
			return
		}
		label, err := clf.ClassifyVector(vec)
		if err != nil {
			log.Fatal(err)
		}
		st.label = label
		st.labeled = true
	}
	dropDone := func() {
		kept := active[:0]
		for _, tp := range active {
			if !flows[tp].done {
				kept = append(kept, tp)
			}
		}
		active = kept
	}
	for i := range packets {
		p := &packets[i]
		if len(p.Payload) == 0 {
			continue
		}
		st := flows[p.Tuple]
		if st == nil {
			dropDone()
			if len(active) >= maxActive {
				// Early-classify the oldest active flow on its partial
				// vector to make room — shedding state, not the flow.
				settle(flows[active[0]])
				active = active[1:]
				evictions++
			}
			vec, err := entest.NewStreamVector(0.25, 0.75, widths, budget, 7)
			if err != nil {
				log.Fatal(err)
			}
			if counters == 0 {
				counters = vec.Counters()
			}
			st = &flowState{vec: vec}
			flows[p.Tuple] = st
			active = append(active, p.Tuple)
		}
		if st.done {
			continue
		}
		if _, err := st.vec.Write(p.Payload); err != nil {
			log.Fatal(err)
		}
		st.seen += len(p.Payload)
		if st.seen >= budget {
			settle(st)
		}
	}
	// End of capture: settle whatever is still streaming.
	for _, tp := range active {
		if st := flows[tp]; !st.done && st.seen > 0 {
			settle(st)
		}
	}

	correct, classified := 0, 0
	for tuple, st := range flows {
		if !st.labeled {
			continue
		}
		classified++
		if info := trace.Flows[tuple]; info != nil && info.Class == st.label {
			correct++
		}
	}
	fmt.Printf("streamed classification: %d flows labeled (%d too short to vector), %.1f%% ground-truth accuracy\n",
		classified, tooShort, 100*float64(correct)/float64(max(1, classified)))
	fmt.Printf("per-flow state: %d counters (vs %d bytes of buffered payload)\n",
		counters, budget)
	fmt.Printf("bounded state: ≤%d concurrent flows held counters; %d flows early-classified at the cap\n",
		maxActive, evictions)
}

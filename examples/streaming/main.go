// Streaming: per-packet entropy estimation without buffering. A router
// that cannot afford even the b-byte flow buffer can run the one-pass
// (δ,ε)-estimator: every payload byte updates reservoir-sampled counters,
// and the entropy vector is available at any instant. This example also
// demonstrates pcap interop — the synthetic trace is exported as a
// tcpdump-readable capture and read back before processing.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"bytes"
	"fmt"
	"log"

	"iustitia"
	"iustitia/internal/corpus"
	"iustitia/internal/entest"
	"iustitia/internal/packet"
	"iustitia/internal/pcap"
)

func main() {
	// Train a classifier once; we will feed it streamed entropy vectors.
	files, err := iustitia.SyntheticCorpus(3, 120, 1<<10, 8<<10)
	if err != nil {
		log.Fatal(err)
	}
	// Training with estimation enabled matches the training features to
	// the noisy streamed features the router will produce (the paper's
	// §4.4.2 re-selection on estimated vectors).
	clf, err := iustitia.Train(files,
		iustitia.WithModel(iustitia.ModelCART),
		iustitia.WithBufferSize(1024),
		iustitia.WithEstimation(0.25, 0.75),
	)
	if err != nil {
		log.Fatal(err)
	}
	widths := clf.FeatureWidths()

	// Generate a small trace and round-trip it through the pcap format,
	// exactly as if it had been captured off the wire by tcpdump.
	cfg := packet.DefaultTraceConfig()
	cfg.Flows = 120
	cfg.Seed = 5
	cfg.HTTPHeaderFraction = 0
	trace, err := packet.Generate(cfg, corpus.NewGenerator(5))
	if err != nil {
		log.Fatal(err)
	}
	var capture bytes.Buffer
	if err := pcap.WriteTrace(&capture, trace); err != nil {
		log.Fatal(err)
	}
	packets, err := pcap.Read(&capture)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %d packets back from a %0.1f MB pcap capture\n",
		len(packets), float64(capture.Len())/(1<<20))

	// One StreamVector per flow: consume payloads packet by packet; after
	// ~1 KiB of payload, classify from the streamed vector.
	const budget = 1024
	type flowState struct {
		vec   *entest.StreamVector
		seen  int
		done  bool
		label iustitia.Class
	}
	flows := make(map[packet.FiveTuple]*flowState)
	for i := range packets {
		p := &packets[i]
		if len(p.Payload) == 0 {
			continue
		}
		st := flows[p.Tuple]
		if st == nil {
			vec, err := entest.NewStreamVector(0.25, 0.75, widths, budget, 7)
			if err != nil {
				log.Fatal(err)
			}
			st = &flowState{vec: vec}
			flows[p.Tuple] = st
		}
		if st.done {
			continue
		}
		if _, err := st.vec.Write(p.Payload); err != nil {
			log.Fatal(err)
		}
		st.seen += len(p.Payload)
		if st.seen >= budget {
			label, err := clf.ClassifyVector(st.vec.Vector())
			if err != nil {
				log.Fatal(err)
			}
			st.label = label
			st.done = true
		}
	}

	correct, classified := 0, 0
	for tuple, st := range flows {
		if !st.done {
			continue
		}
		classified++
		if info := trace.Flows[tuple]; info != nil && info.Class == st.label {
			correct++
		}
	}
	var counters int
	for _, st := range flows {
		counters = st.vec.Counters()
		break
	}
	fmt.Printf("streamed classification: %d flows labeled, %.1f%% ground-truth accuracy\n",
		classified, 100*float64(correct)/float64(max(1, classified)))
	fmt.Printf("per-flow state: %d counters (vs %d bytes of buffered payload)\n",
		counters, budget)
}

// Forensics: the paper's law-enforcement motivation. An investigator wants
// to run keyword searches over live traffic, but keyword matching only
// makes sense on text flows. Iustitia identifies text flows on the fly so
// the expensive search runs on a fraction of the traffic; binary flows are
// only logged (possible copyrighted content) and encrypted flows counted.
//
// Run with:
//
//	go run ./examples/forensics
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"iustitia"
	"iustitia/internal/corpus"
	"iustitia/internal/packet"
)

func main() {
	files, err := iustitia.SyntheticCorpus(29, 150, 1<<10, 16<<10)
	if err != nil {
		log.Fatal(err)
	}
	clf, err := iustitia.Train(files, iustitia.WithBufferSize(32))
	if err != nil {
		log.Fatal(err)
	}
	mon, err := iustitia.NewMonitor(clf,
		iustitia.WithMonitorBufferSize(32),
		iustitia.WithHeaderStripping(0),
		iustitia.WithPurging(4),
		iustitia.WithIdleFlush(2*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}

	cfg := packet.DefaultTraceConfig()
	cfg.Flows = 1000
	cfg.Seed = 31
	trace, err := packet.Generate(cfg, corpus.NewGenerator(31))
	if err != nil {
		log.Fatal(err)
	}

	keywords := [][]byte{
		[]byte("payload"), []byte("network"), []byte("classifier"), []byte("message"),
	}
	var (
		bytesTotal, bytesSearched int
		keywordHits               int
		flowsWithHits             = map[iustitia.FiveTuple]bool{}
		binaryLogged              int
		encryptedSeen             int
	)
	for i := range trace.Packets {
		p := &trace.Packets[i]
		verdict, err := mon.Process(p)
		if err != nil {
			log.Fatal(err)
		}
		if !p.IsData() {
			continue
		}
		bytesTotal += len(p.Payload)
		if !verdict.Routed {
			continue
		}
		switch verdict.Queue {
		case iustitia.Text:
			// Keyword search runs only on the text queue.
			bytesSearched += len(p.Payload)
			for _, kw := range keywords {
				if bytes.Contains(p.Payload, kw) {
					keywordHits++
					flowsWithHits[p.Tuple] = true
				}
			}
		case iustitia.Binary:
			binaryLogged++
		case iustitia.Encrypted:
			encryptedSeen++
		}
	}

	fmt.Printf("traffic scanned: %.1f MB total, %.1f MB searched (%.1f%% of bytes)\n",
		mb(bytesTotal), mb(bytesSearched), 100*float64(bytesSearched)/float64(bytesTotal))
	fmt.Printf("keyword hits: %d across %d text flows\n", keywordHits, len(flowsWithHits))
	fmt.Printf("binary packets logged for copyright review: %d\n", binaryLogged)
	fmt.Printf("encrypted packets (opaque, counted only): %d\n", encryptedSeen)

	// How much text traffic did misclassification hide from the search?
	missedText := 0
	for tuple, info := range trace.Flows {
		if label, ok := mon.Label(tuple); ok &&
			info.Class == corpus.Text && label != iustitia.Text {
			missedText++
		}
	}
	fmt.Printf("text flows hidden by misclassification: %d of %d\n",
		missedText, countClass(trace, corpus.Text))
}

func mb(n int) float64 { return float64(n) / (1 << 20) }

func countClass(trace *packet.Trace, class corpus.Class) int {
	n := 0
	for _, info := range trace.Flows {
		if info.Class == class {
			n++
		}
	}
	return n
}

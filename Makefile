# Convenience targets for the Iustitia reproduction.

GO ?= go

.PHONY: all build test race check cluster-soak ops-soak bench bench-json bench-smoke bench-multicore experiments examples fuzz snapshot-compat clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The pre-merge gate: static checks, the race detector, the hot-path
# allocation-regression gate (run without -race, which skews allocation
# counts), the networked-ingest chaos soak, the cluster chaos soak, and
# a short fuzz smoke over the byte-level parsers and snapshot decoders.
# Slower than `test`, run before pushing.
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run 'TestVectorAllocRegression|TestStreamWriteAllocFree|TestBatchAllocRegression' -count=1 ./internal/entropy ./internal/entest ./internal/flow
	$(GO) test -run 'TestChaosConnSoak' -count=1 ./internal/ingest
	$(MAKE) cluster-soak
	$(MAKE) ops-soak
	$(GO) test -fuzz=FuzzStrip -fuzztime=5s ./internal/appheader
	$(GO) test -fuzz=FuzzReadTrace -fuzztime=5s ./internal/packet
	$(GO) test -fuzz=FuzzRead -fuzztime=5s ./internal/pcap
	$(GO) test -fuzz=FuzzFrame -fuzztime=5s ./internal/ingest
	$(GO) test -fuzz=FuzzDifferentialPackedVsLegacy -fuzztime=5s ./internal/entropy
	$(GO) test -fuzz=FuzzDecodeSnapshot -fuzztime=5s ./internal/persist
	$(GO) test -fuzz=FuzzImportCheckpoint -fuzztime=5s ./internal/persist

# The cluster chaos soaks (DESIGN.md §12): real router + serve binaries,
# deterministic seeds. TestClusterSoak runs a SIGKILL crash-loop and a
# rolling checkpoint handoff under a frame-tearing transport;
# TestMembershipChurnSoak streams load while live-adding a node,
# SIGKILLing another mid-stream (journal replay recovers the unacked
# packets), and removing the newcomer. Both assert the cluster-wide
# conservation law and zero verdict loss. Skipped under -short.
cluster-soak:
	$(GO) test -run 'TestClusterSoak|TestMembershipChurnSoak' -count=1 ./cmd/iustitia-router

# The ops-chaos soak (DESIGN.md §14): one real serve node behind a real
# router, operated under fire — live reconfig over SET/RELOAD/SIGHUP
# mid-burst, an atomic model hot-swap proven verdict-for-verdict against
# an in-process replay that swaps at the same boundary, rejected swaps
# (corrupt blob, metadata mismatch) that leave the old model serving, a
# breaker-tripping candidate auto-rolled-back during probation, and a
# SIGKILL mid-swap-upload followed by a checkpoint resume. Skipped under
# -short.
ops-soak:
	$(GO) test -run 'TestOpsChaosSoak' -count=1 ./cmd/iustitia-router

# One benchmark per paper table/figure plus ablations and micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable hot-path numbers (BENCH_entropy.json): entropy-vector
# extraction ns/op, B/op, allocs/op at 256B/1KiB/4KiB against the legacy
# string-keyed baseline, plus flow.ParallelEngine flows/sec. The committed
# file is the perf trajectory tracked across PRs.
bench-json:
	$(GO) run ./cmd/iustitia-benchjson -out BENCH_entropy.json

# The multicore evidence run: the full trajectory append plus a
# GOMAXPROCS sweep of the pipelined shards {1,4} points, gated on the
# 4-shard pipelined speedup reaching 1.5x over 1 shard. Meant for a
# runner with >= 4 CPUs; on fewer the gate self-skips (a 1-CPU box
# cannot exhibit parallel speedup), so the append still lands honestly.
bench-multicore:
	$(GO) run ./cmd/iustitia-benchjson -out BENCH_entropy.json -procs-sweep 1,2,4 -assert-scaling 1.5

# CI smoke: compile and run every benchmark exactly once, so a benchmark
# that panics or regresses into an error fails the pipeline without
# paying for full measurement runs.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Print every evaluation table/figure as text (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/iustitia-bench -experiment all -scale default

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/qos-router
	$(GO) run ./examples/ids-offload
	$(GO) run ./examples/forensics
	$(GO) run ./examples/streaming

# Short fuzzing passes over the byte-level parsers and every snapshot
# decoder (frame, tree, SVM, classifier, CDB, checkpoint).
fuzz:
	$(GO) test -fuzz=FuzzStrip -fuzztime=30s ./internal/appheader
	$(GO) test -fuzz=FuzzReadTrace -fuzztime=30s ./internal/packet
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/pcap
	$(GO) test -fuzz=FuzzFrame -fuzztime=30s ./internal/ingest
	$(GO) test -fuzz=FuzzDecodeSnapshot -fuzztime=30s ./internal/persist
	$(GO) test -fuzz=FuzzDecodeTree -fuzztime=30s ./internal/persist
	$(GO) test -fuzz=FuzzDecodeSVMModel -fuzztime=30s ./internal/persist
	$(GO) test -fuzz=FuzzDecodeClassifier -fuzztime=30s ./internal/persist
	$(GO) test -fuzz=FuzzImportCDB -fuzztime=30s ./internal/persist
	$(GO) test -fuzz=FuzzImportCheckpoint -fuzztime=30s ./internal/persist

# Snapshot wire-format compatibility against the checked-in golden
# fixtures (internal/persist/testdata). A failure means the format
# changed without a version bump; regenerate intentionally with -update.
snapshot-compat:
	$(GO) test -run 'TestGolden' -v ./internal/persist

clean:
	$(GO) clean ./...
	rm -f model.json test_output.txt bench_output.txt

# Convenience targets for the Iustitia reproduction.

GO ?= go

.PHONY: all build test race check bench experiments examples fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The pre-merge gate: static checks, the race detector, and a short fuzz
# smoke over the byte-level parsers. Slower than `test`, run before pushing.
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -fuzz=FuzzStrip -fuzztime=5s ./internal/appheader
	$(GO) test -fuzz=FuzzReadTrace -fuzztime=5s ./internal/packet
	$(GO) test -fuzz=FuzzRead -fuzztime=5s ./internal/pcap

# One benchmark per paper table/figure plus ablations and micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Print every evaluation table/figure as text (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/iustitia-bench -experiment all -scale default

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/qos-router
	$(GO) run ./examples/ids-offload
	$(GO) run ./examples/forensics
	$(GO) run ./examples/streaming

# Short fuzzing passes over the three byte-level parsers.
fuzz:
	$(GO) test -fuzz=FuzzStrip -fuzztime=30s ./internal/appheader
	$(GO) test -fuzz=FuzzReadTrace -fuzztime=30s ./internal/packet
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/pcap

clean:
	$(GO) clean ./...
	rm -f model.json test_output.txt bench_output.txt

// Command iustitia-router fronts a cluster of iustitia-serve instances:
// it accepts framed-packet connections, assigns every flow to a node by
// consistent hashing, probes each node's status endpoint for health, and
// fails over per the routing policy when a node is unreachable, degraded,
// or draining. Its status endpoint federates the per-node STATUS lines
// and asserts the cluster-wide conservation law
// Σ Received == Σ Admitted + Σ Quarantined + Σ Shed.
//
// Route across two nodes, requeueing for absent owners (the rolling
// restart policy):
//
//	iustitia-router -listen 127.0.0.1:9300 -status 127.0.0.1:9310 \
//	    -node a=127.0.0.1:9301,127.0.0.1:9302 \
//	    -node b=127.0.0.1:9303,127.0.0.1:9304 \
//	    -policy requeue
//
// The first SIGINT/SIGTERM drains gracefully; a second signal forces
// immediate exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof debug endpoint
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"iustitia/internal/cluster"
)

// nodeFlags collects repeated -node values of the form
// name=ingestAddr,statusAddr.
type nodeFlags []cluster.NodeConfig

func (n *nodeFlags) String() string {
	parts := make([]string, 0, len(*n))
	for _, c := range *n {
		parts = append(parts, fmt.Sprintf("%s=%s,%s", c.Name, c.Addr, c.StatusAddr))
	}
	return strings.Join(parts, " ")
}

func (n *nodeFlags) Set(v string) error {
	cfg, err := cluster.ParseNodeSpec(v)
	if err != nil {
		return err
	}
	*n = append(*n, cfg)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iustitia-router:", err)
		os.Exit(1)
	}
}

func run() error {
	var nodes nodeFlags
	flag.Var(&nodes, "node", "serve instance as name=ingestAddr,statusAddr (repeatable)")
	var (
		listen   = flag.String("listen", "", "TCP listen address for framed packet ingest (e.g. 127.0.0.1:9300)")
		status   = flag.String("status", "", "TCP listen address for the cluster status endpoint")
		policy   = flag.String("policy", "requeue", "routing policy when a flow's owner is unavailable: next|shed|requeue")
		requeue  = flag.Duration("requeue-timeout", 10*time.Second, "how long a packet waits for a node before falling through (0 = until drain)")
		replicas = flag.Int("replicas", 0, "virtual nodes per instance on the hash ring (0 = default)")

		probeEvery   = flag.Duration("probe-interval", 500*time.Millisecond, "health probe period per node")
		probeTimeout = flag.Duration("probe-timeout", 2*time.Second, "deadline for one health probe")

		dialTimeout = flag.Duration("dial-timeout", 2*time.Second, "deadline for one upstream dial")
		sendRetries = flag.Int("send-retries", 3, "consecutive upstream delivery attempts before rerouting")
		backoffBase = flag.Duration("send-backoff-base", 0, "initial delivery-retry backoff toward a failing node (0 = default)")
		backoffMax  = flag.Duration("send-backoff-max", 0, "delivery-retry backoff cap (0 = default)")
		journalCap  = flag.Int("journal", cluster.DefaultJournalCap, "sent-but-unacked packets journaled per node for crash replay (0 = disabled)")
		adminWait   = flag.Duration("admin-timeout", 10*time.Second, "deadline for one ADD/REMOVE membership operation")

		readTimeout = flag.Duration("read-timeout", 30*time.Second, "per-read deadline inside a frame (0 = none)")
		idleTimeout = flag.Duration("idle-timeout", 5*time.Minute, "deadline between frames on a connection (0 = none)")
		maxFrame    = flag.Int("max-frame", 0, "max frame payload bytes a header may declare (0 = default)")
		drainTime   = flag.Duration("drain-timeout", 30*time.Second, "how long a graceful drain waits for connected clients")
		pprofAddr   = flag.String("pprof", "", "TCP listen address for the net/http/pprof debug endpoint (enables mutex and block profiling)")
	)
	flag.Parse()

	if *listen == "" {
		return fmt.Errorf("no listener: pass -listen")
	}
	if len(nodes) == 0 {
		return fmt.Errorf("no nodes: pass at least one -node name=ingestAddr,statusAddr")
	}
	routePolicy, err := cluster.ParseRoutePolicy(*policy)
	if err != nil {
		return err
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("listening on %s\n", l.Addr())
	var statusLn net.Listener
	if *status != "" {
		statusLn, err = net.Listen("tcp", *status)
		if err != nil {
			return err
		}
		fmt.Printf("status on %s\n", statusLn.Addr())
	}
	if *pprofAddr != "" {
		// Same contention-profiling setup as iustitia-serve: cheap enough
		// sampling rates to leave on while the router forwards live load.
		runtime.SetMutexProfileFraction(5)
		runtime.SetBlockProfileRate(100_000)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return err
		}
		fmt.Printf("pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() { _ = http.Serve(pln, nil) }()
	}

	r, err := cluster.NewRouter(cluster.RouterConfig{
		Nodes:          nodes,
		Listeners:      []net.Listener{l},
		StatusListener: statusLn,
		Replicas:       *replicas,
		Policy:         routePolicy,
		RequeueTimeout: *requeue,
		Probe: cluster.ProbeConfig{
			Interval: *probeEvery,
			Timeout:  *probeTimeout,
			Seed:     time.Now().UnixNano(),
		},
		DialTimeout:     *dialTimeout,
		SendRetries:     *sendRetries,
		SendBackoffBase: *backoffBase,
		SendBackoffMax:  *backoffMax,
		JournalCap:      ringJournalCap(*journalCap),
		AdminTimeout:    *adminWait,
		Seed:            time.Now().UnixNano(),
		MaxFrame:        *maxFrame,
		ReadTimeout:     *readTimeout,
		IdleTimeout:     *idleTimeout,
	})
	if err != nil {
		return err
	}
	if err := r.Start(); err != nil {
		return err
	}
	names := make([]string, 0, len(nodes))
	for _, n := range nodes {
		names = append(names, n.Name)
	}
	fmt.Printf("routing to %d nodes (%s), policy %s\n", len(nodes), strings.Join(names, ", "), routePolicy)

	// First signal: graceful drain. Second signal: immediate exit.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigCh
	fmt.Printf("received %v: draining (second signal forces immediate exit)\n", sig)
	go func() {
		sig2 := <-sigCh
		fmt.Fprintf(os.Stderr, "iustitia-router: second %v: forcing immediate exit\n", sig2)
		os.Exit(130)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drainTime)
	defer cancel()
	drainErr := r.Shutdown(ctx)

	st := r.Stats()
	cs := r.ClusterStats()
	fmt.Printf("drained: received %d, forwarded %d, quarantined %d, shed %d over %d connections\n",
		st.Received, st.Forwarded, st.Quarantined, st.Shed, st.TotalConns)
	fmt.Printf("routing: rerouted %d, requeued %d, send-failures %d\n",
		st.Rerouted, st.Requeued, st.SendFailures)
	fmt.Printf("replication: replayed %d, replay-dropped %d, journal-dropped %d, journaled %d\n",
		st.Replayed, st.ReplayDropped, st.JournalDropped, st.Journaled)
	fmt.Printf("membership: nodes-added %d, nodes-removed %d, migrated-flows %d, migrations-skipped %d\n",
		st.NodesAdded, st.NodesRemoved, st.MigratedFlows, st.MigrationsSkipped)
	perNode := make([]string, 0, len(st.PerNode))
	for name, count := range st.PerNode {
		perNode = append(perNode, fmt.Sprintf("%s=%d", name, count))
	}
	sort.Strings(perNode)
	fmt.Printf("per-node forwarded: %s\n", strings.Join(perNode, " "))
	fmt.Printf("cluster: sum_received=%d sum_admitted=%d sum_quarantined=%d sum_shed=%d gap=%d violations=%d\n",
		cs.SumReceived, cs.SumAdmitted, cs.SumQuarantined, cs.SumShed, cs.Gap(), st.ConservationViolations)
	return drainErr
}

// ringJournalCap maps the flag convention (0 disables) to the config
// convention (negative disables, 0 selects the default).
func ringJournalCap(flagVal int) int {
	if flagVal == 0 {
		return -1
	}
	return flagVal
}

package main

// Ops-chaos soak: a real iustitia-serve node behind a real
// iustitia-router, operated under fire — live reconfig (SET, RELOAD,
// SIGHUP) mid-burst, an atomic model hot-swap with exact verdict
// equality against an in-process replay that swaps at the same boundary,
// rejected swaps (corrupt blob, metadata mismatch) that leave the old
// model serving, a breaker-tripping candidate that is auto-rolled-back
// during probation, and a SIGKILL landing mid-swap-upload followed by a
// checkpoint resume. The cluster conservation law holds at every quiesce
// point and through the final drain.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"iustitia"
	"iustitia/internal/cluster"
	"iustitia/internal/core"
	"iustitia/internal/corpus"
	"iustitia/internal/flow"
	"iustitia/internal/ml/cart"
	"iustitia/internal/ops"
	"iustitia/internal/packet"
	"iustitia/internal/persist"
)

// trainSnapshotSeed trains a classifier on a seed-specific corpus and
// saves it as a binary snapshot under name.
func trainSnapshotSeed(t *testing.T, dir, name string, seed int64) string {
	t.Helper()
	files, err := iustitia.SyntheticCorpus(seed, 30, 2048, 4096)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := iustitia.Train(files)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := clf.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// loadCoreSnapshot loads a model snapshot as the bare core classifier the
// hot-swap machinery (and the reference replay) operates on.
func loadCoreSnapshot(t *testing.T, path string) *core.Classifier {
	t.Helper()
	payload, err := persist.LoadFile(path, persist.KindClassifier)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := core.DecodeSnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}
	return clf
}

// opsRefEngine builds an in-process engine with the exact configuration
// the serve binary runs in this soak (-b 32, -shards 2, tolerate).
func opsRefEngine(t *testing.T, clf *core.Classifier) *flow.ParallelEngine {
	t.Helper()
	engine, err := flow.NewParallelEngine(flow.EngineConfig{
		BufferSize:    32,
		Classifier:    clf,
		FallbackClass: corpus.Text,
		Faults:        flow.FaultPolicy{Tolerate: true},
		CDB: flow.CDBConfig{
			PurgeOnClose:  true,
			PurgeInactive: true,
			N:             4,
		},
	}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

// feedTrace replays a trace into an in-process engine without flushing —
// the state a quiesced (but undrained) node holds.
func feedTrace(t *testing.T, engine *flow.ParallelEngine, trace *packet.Trace) {
	t.Helper()
	for i := range trace.Packets {
		if _, err := engine.Process(&trace.Packets[i]); err != nil {
			t.Fatalf("reference Process: %v", err)
		}
	}
}

// labelDivergence counts trace flows the two models label differently.
func labelDivergence(t *testing.T, a, b *core.Classifier, trace *packet.Trace) int {
	t.Helper()
	ea, eb := opsRefEngine(t, a), opsRefEngine(t, b)
	feedTrace(t, ea, trace)
	feedTrace(t, eb, trace)
	if _, err := ea.FlushAll(time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := eb.FlushAll(time.Hour); err != nil {
		t.Fatal(err)
	}
	n := 0
	for tuple := range trace.Flows {
		la, oka := ea.Label(tuple)
		lb, okb := eb.Label(tuple)
		if oka != okb || la != lb {
			n++
		}
	}
	return n
}

// constantModelJSON hand-crafts a degenerate but valid CART model that
// labels everything Binary — guaranteed to diverge from any accurate
// model on a mixed trace.
func constantModelJSON(t *testing.T) []byte {
	t.Helper()
	blob, err := json.Marshal(struct {
		Kind   core.ModelKind `json:"kind"`
		Widths []int          `json:"widths"`
		Tree   *cart.Tree     `json:"tree"`
	}{core.KindCART, []int{1}, &cart.Tree{
		Classes: corpus.NumClasses,
		Width:   1,
		Root:    &cart.Node{Label: int(corpus.Binary)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// breakerTripModelJSON is the ops package's hostile candidate: behaves on
// low-entropy payloads, emits the out-of-range class 99 once the width-1
// entropy exceeds 0.3 — it passes shadow verification over a low-entropy
// sample ring and detonates on high-entropy live traffic.
func breakerTripModelJSON(t *testing.T) []byte {
	t.Helper()
	blob, err := json.Marshal(struct {
		Kind   core.ModelKind `json:"kind"`
		Widths []int          `json:"widths"`
		Tree   *cart.Tree     `json:"tree"`
	}{core.KindCART, []int{1}, &cart.Tree{
		Classes: corpus.NumClasses,
		Width:   1,
		Root: &cart.Node{
			Feature:   0,
			Threshold: 0.3,
			Left:      &cart.Node{Label: int(corpus.Text)},
			Right:     &cart.Node{Label: 99},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// chooseModelB picks the swap candidate: a retrained snapshot whose
// verdicts provably diverge from model A on the phase-2 trace, falling
// back to the constant model if retraining happens to converge to
// identical behaviour. Returns the wire blob and the core classifier the
// reference replay swaps in.
func chooseModelB(t *testing.T, dir, modelA string, trace *packet.Trace) ([]byte, *core.Classifier) {
	t.Helper()
	a := loadCoreSnapshot(t, modelA)
	for seed := int64(2); seed <= 5; seed++ {
		path := trainSnapshotSeed(t, dir, fmt.Sprintf("model-b-%d.snap", seed), seed)
		b := loadCoreSnapshot(t, path)
		if n := labelDivergence(t, a, b, trace); n > 0 {
			t.Logf("model B (seed %d) diverges from A on %d phase-2 flows", seed, n)
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			return blob, b
		}
	}
	blob := constantModelJSON(t)
	b, err := core.Load(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if n := labelDivergence(t, a, b, trace); n == 0 {
		t.Fatal("even the constant model agrees with A on every phase-2 flow; divergence assertion is impossible")
	}
	t.Log("retrained candidates converged; swapping the constant model instead")
	return blob, b
}

// burstTrace hand-builds a trace of n single-packet flows carrying the
// same full-buffer payload, so every flow classifies immediately and
// lands in the shadow-sample ring.
func burstTrace(base uint16, n int, payload []byte) *packet.Trace {
	tr := &packet.Trace{}
	for i := 0; i < n; i++ {
		tr.Packets = append(tr.Packets, packet.Packet{
			Tuple: packet.FiveTuple{
				SrcIP: [4]byte{10, 9, 0, 1}, DstIP: [4]byte{192, 168, 9, 1},
				SrcPort: base + uint16(i), DstPort: 443, Transport: packet.TCP,
			},
			Time:    time.Duration(i) * time.Millisecond,
			Flags:   packet.FlagACK,
			Payload: payload,
		})
	}
	return tr
}

// swapModel performs one SWAP-MODEL round trip against a node's admin
// listener and returns the trimmed reply line.
func swapModel(t *testing.T, statusAddr string, blob []byte) string {
	t.Helper()
	c, err := net.Dial("tcp", statusAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(60 * time.Second))
	if _, err := fmt.Fprintf(c, "SWAP-MODEL %d\n", len(blob)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(blob); err != nil {
		t.Fatal(err)
	}
	var reply bytes.Buffer
	if _, err := reply.ReadFrom(c); err != nil {
		t.Fatalf("SWAP-MODEL reply: %v", err)
	}
	return strings.TrimSpace(reply.String())
}

// waitNodeMetrics polls a node's METRICS endpoint until cond holds.
func waitNodeMetrics(t *testing.T, statusAddr, what string, cond func(*ops.NodeMetrics) bool) *ops.NodeMetrics {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var last *ops.NodeMetrics
	for time.Now().Before(deadline) {
		if nm, err := ops.ProbeMetrics(statusAddr, 2*time.Second); err == nil {
			last = nm
			if cond(nm) {
				return nm
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("metrics never showed %s; last: %+v", what, last)
	return nil
}

// TestOpsChaosSoak is the live-operations soak from the roadmap's ops
// item:
//
//  1. Load + live reconfig: a trace streams through the router while the
//     node's overflow policy and batch bound are retuned over the SET
//     verb, restored through a RELOAD of the -config file, and reloaded
//     again via SIGHUP — all mid-burst, under the frame gate.
//  2. Hot-swap: after a quiesce, a retrained model B (proven to disagree
//     with A on at least one phase-2 flow) is installed over SWAP-MODEL
//     with zero drain; a second trace streams through the new model. The
//     node's engine counters and verdict distribution exactly match an
//     in-process replay that swaps classifiers at the same boundary.
//  3. Rejections: a corrupt blob and a metadata-mismatched model are both
//     refused, and METRICS proves the live model kept serving.
//  4. Probation rollback: a breaker-tripping candidate passes shadow
//     verification over a low-entropy sample ring, detonates on
//     high-entropy traffic, and is rolled back automatically.
//  5. Crash mid-swap: the node is SIGKILLed while a swap blob is mid
//     upload, resumes from its periodic checkpoint, and serves a final
//     clean trace from the on-disk model.
//
// Conservation (gap 0, zero violations) is asserted at every quiesce
// point and at the router's drain; the swap counters federate into the
// router's CLUSTER metrics.
func TestOpsChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("ops chaos soak builds and runs real binaries")
	}
	dir := t.TempDir()
	routerBin := buildBinary(t, dir, "iustitia-router", ".")
	serveBin := buildBinary(t, dir, "iustitia-serve", "../iustitia-serve")
	modelA := trainSnapshotSeed(t, dir, "model-a.snap", 1)
	ckpt := filepath.Join(dir, "node-a.ckpt")
	conf := filepath.Join(dir, "serve.conf")
	if err := os.WriteFile(conf, []byte("# ops soak live config\noverflow=block\nbatch=64\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	serveExtra := []string{"-config", conf, "-checkpoint", ckpt, "-checkpoint-interval", "2s"}
	a := startServe(t, serveBin, modelA, "a", "127.0.0.1:0", "127.0.0.1:0", serveExtra...)

	router := startProc(t, routerBin,
		"-listen", "127.0.0.1:0", "-status", "127.0.0.1:0",
		"-node", "a="+a.addr+","+a.statusAddr,
		"-policy", "requeue", "-requeue-timeout", "60s",
		"-probe-interval", "50ms", "-drain-timeout", "30s")
	banner := router.waitOutput(t, "routing to 1 nodes")
	routerAddr := extractAddr(t, banner, "listening on ")
	routerStatus := extractAddr(t, banner, "status on ")
	waitClusterAvailable(t, routerStatus, 1)
	kindA := waitNodeMetrics(t, a.statusAddr, "a model kind", func(nm *ops.NodeMetrics) bool {
		return nm.Swap.ModelKind != ""
	}).Swap.ModelKind

	trace0 := soakTrace(t, 50, 61)
	trace1 := soakTrace(t, 50, 62)
	trace2 := soakTrace(t, 50, 63)
	modelBBlob, coreB := chooseModelB(t, dir, modelA, trace1)

	// --- Phase 1: load with live reconfig mid-burst. The policies flip
	// under the frame gate, so admission accounting never straddles a
	// transition; nothing here may shed or the phase-2 equality check
	// would be vacuous.
	streamErr := make(chan error, 1)
	go func() { streamErr <- streamTrace(routerAddr, trace0, nil, 2*time.Millisecond) }()
	time.Sleep(100 * time.Millisecond)
	if reply := adminCmd(t, a.statusAddr, "SET overflow=shed batch=8"); reply != "OK v1 applied=overflow,batch" {
		t.Fatalf("SET reply %q", reply)
	}
	if reply := adminCmd(t, a.statusAddr, "RELOAD"); !strings.HasPrefix(reply, "OK v1 reloaded=") {
		t.Fatalf("RELOAD reply %q", reply)
	}
	if err := a.proc.cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	a.proc.waitOutput(t, "reloaded "+conf)
	if err := <-streamErr; err != nil {
		t.Fatalf("phase-1 stream: %v", err)
	}
	snap := quiesceCluster(t, routerStatus)
	if snap.Cluster.Gap != 0 || snap.Cluster.Violations != 0 {
		t.Errorf("conservation after live reconfig: gap=%d violations=%d, want 0/0", snap.Cluster.Gap, snap.Cluster.Violations)
	}
	if reply := adminCmd(t, a.statusAddr, "SET overflow=sideways"); !strings.HasPrefix(reply, "ERR") {
		t.Errorf("bad SET reply %q, want ERR", reply)
	}

	// --- Phase 2: atomic hot-swap to model B at a quiesced boundary, then
	// stream the second trace through it. No drain, no restart.
	if reply := swapModel(t, a.statusAddr, modelBBlob); !strings.HasPrefix(reply, "OK v1 swapped") {
		t.Fatalf("SWAP-MODEL reply %q", reply)
	}
	kindB := waitNodeMetrics(t, a.statusAddr, "probation to pass", func(nm *ops.NodeMetrics) bool {
		return nm.Swap.Swaps == 1 && !nm.Swap.InProgress && nm.Swap.Rollbacks == 0
	}).Swap.ModelKind
	if err := streamTrace(routerAddr, trace1, nil, 0); err != nil {
		t.Fatalf("phase-2 stream: %v", err)
	}
	quiesceCluster(t, routerStatus)

	// The in-process reference replays both traces with the classifier
	// swapped at the same boundary; the node must match it exactly —
	// the §6 conservation argument, per verdict, across a live swap.
	refClf := loadCoreSnapshot(t, modelA)
	ref := opsRefEngine(t, refClf)
	feedTrace(t, ref, trace0)
	refClf.Swap(coreB)
	feedTrace(t, ref, trace1)
	want := ref.Stats()
	nm := waitNodeMetrics(t, a.statusAddr, "engine counters to settle", func(nm *ops.NodeMetrics) bool {
		return nm.Engine.Admitted == want.Admitted && nm.Engine.Classified == want.Classified
	})
	if nm.Transport.Shed != 0 || nm.Transport.Quarantined != 0 {
		t.Fatalf("clean load lost packets: %+v", nm.Transport)
	}
	if nm.Engine.Pending != want.Pending || nm.Engine.Fallback != want.Fallback ||
		nm.Engine.Dropped != want.Dropped || nm.Engine.Shed != want.Shed {
		t.Errorf("post-swap engine counters diverge from swapped replay:\n  node:      %+v\n  reference: %+v", nm.Engine, want)
	}
	for i, v := range nm.Verdicts {
		if v.Packets != want.QueueCounts[i] {
			t.Errorf("verdict class %s: node %d packets, reference %d", v.Class, v.Packets, want.QueueCounts[i])
		}
	}

	// The swap federates into the router's cluster metrics and its
	// CLUSTER line.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cm, err := cluster.ProbeClusterMetrics(routerStatus, 2*time.Second)
		if err == nil && cm.SumSwaps == 1 && cm.PerNode["a"] != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("swap never federated: %+v err=%v", cm, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// --- Phase 3: rejected swaps leave the live model serving. A corrupt
	// blob fails decode; a two-class model fails metadata verification.
	if reply := swapModel(t, a.statusAddr, []byte("not a model, not even close")); !strings.HasPrefix(reply, "ERR") {
		t.Fatalf("corrupt swap reply %q, want ERR", reply)
	}
	twoClass, err := json.Marshal(struct {
		Kind   core.ModelKind `json:"kind"`
		Widths []int          `json:"widths"`
		Tree   *cart.Tree     `json:"tree"`
	}{core.KindCART, []int{1}, &cart.Tree{Classes: 2, Width: 1, Root: &cart.Node{Label: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	reply := swapModel(t, a.statusAddr, twoClass)
	if !strings.HasPrefix(reply, "ERR") || !strings.Contains(reply, "classes") {
		t.Fatalf("metadata-mismatch swap reply %q, want ERR about classes", reply)
	}
	nm = waitNodeMetrics(t, a.statusAddr, "two rejections", func(nm *ops.NodeMetrics) bool {
		return nm.Swap.Rejected == 2
	})
	if nm.Swap.Swaps != 1 || nm.Swap.Rollbacks != 0 || nm.Swap.ModelKind != kindB {
		t.Errorf("rejections disturbed the live model (want kind %q): %+v", kindB, nm.Swap)
	}

	// --- Phase 4: probation rollback. A low-entropy burst fills the
	// shadow-sample ring so the breaker-trip candidate passes shadow
	// verification; the high-entropy burst that follows detonates it and
	// the probation watcher restores model B.
	lowBurst := burstTrace(40000, 100, bytes.Repeat([]byte{'s'}, 32))
	high := make([]byte, 32)
	for i := range high {
		high[i] = byte(i)
	}
	highBurst := burstTrace(41000, 100, high)
	if err := streamTrace(routerAddr, lowBurst, nil, 0); err != nil {
		t.Fatalf("low-entropy burst: %v", err)
	}
	quiesceCluster(t, routerStatus)
	if reply := swapModel(t, a.statusAddr, breakerTripModelJSON(t)); !strings.HasPrefix(reply, "OK v1 swapped") {
		t.Fatalf("trip-model swap reply %q — shadow verification should not catch it on a low-entropy ring", reply)
	}
	if err := streamTrace(routerAddr, highBurst, nil, 0); err != nil {
		t.Fatalf("high-entropy burst: %v", err)
	}
	nm = waitNodeMetrics(t, a.statusAddr, "probation rollback", func(nm *ops.NodeMetrics) bool {
		return nm.Swap.Rollbacks == 1 && !nm.Swap.InProgress
	})
	if nm.Swap.Swaps != 2 || !strings.Contains(nm.Swap.Last, "restored") {
		t.Errorf("rollback state = %+v", nm.Swap)
	}
	snap = quiesceCluster(t, routerStatus)
	if snap.Cluster.Gap != 0 || snap.Cluster.Violations != 0 {
		t.Errorf("conservation after rollback: gap=%d violations=%d, want 0/0", snap.Cluster.Gap, snap.Cluster.Violations)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		cm, err := cluster.ProbeClusterMetrics(routerStatus, 2*time.Second)
		if err == nil && cm.SumSwaps == 2 && cm.SumRollbacks == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rollback never federated: %+v err=%v", cm, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// --- Phase 5: SIGKILL lands while a swap blob is mid-upload; the
	// successor resumes from the periodic checkpoint and serves the
	// on-disk model A (hot-swaps are deliberately memory-only).
	ackDeadline := time.Now().Add(15 * time.Second)
	for {
		ns, err := cluster.ProbeStatus(a.statusAddr, 2*time.Second)
		if err == nil && ns.AckedSeq > 0 {
			break
		}
		if time.Now().After(ackDeadline) {
			t.Fatalf("node never acked a checkpoint; last: %+v err=%v", ns, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	midSwap, err := net.Dial("tcp", a.statusAddr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(midSwap, "SWAP-MODEL %d\n", len(modelBBlob))
	if _, err := midSwap.Write(modelBBlob[:len(modelBBlob)/2]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	aAddr, aStatus := a.addr, a.statusAddr
	a.proc.sigkill(t)
	midSwap.Close()
	waitClusterAvailable(t, routerStatus, 0)

	a2 := startServe(t, serveBin, modelA, "a", aAddr, aStatus, append(serveExtra, "-resume", ckpt)...)
	a2.proc.waitOutput(t, "resume watermark: seq ")
	waitClusterAvailable(t, routerStatus, 1)
	nm = waitNodeMetrics(t, aStatus, "a fresh swap surface", func(nm *ops.NodeMetrics) bool {
		return nm.Swap.Swaps == 0 && nm.Swap.Rejected == 0
	})
	if nm.Swap.ModelKind != kindA {
		t.Errorf("resumed node model kind %q, want the on-disk model's %q", nm.Swap.ModelKind, kindA)
	}
	if err := streamTrace(routerAddr, trace2, nil, 0); err != nil {
		t.Fatalf("post-resume stream: %v", err)
	}
	snap = quiesceCluster(t, routerStatus)
	if snap.Cluster.Gap != 0 || snap.Cluster.Violations != 0 {
		t.Errorf("conservation after crash resume: gap=%d violations=%d, want 0/0", snap.Cluster.Gap, snap.Cluster.Violations)
	}

	// --- Drain everything; the laws must hold at exit too.
	routerOut := router.sigterm(t)
	var rReceived, rForwarded, rQuarantined, rShed, rConns int
	if _, err := fmt.Sscanf(extractLine(t, routerOut, "drained: "),
		"drained: received %d, forwarded %d, quarantined %d, shed %d over %d connections",
		&rReceived, &rForwarded, &rQuarantined, &rShed, &rConns); err != nil {
		t.Fatalf("cannot parse router drain line: %v\n%s", err, routerOut)
	}
	if rForwarded+rQuarantined+rShed != rReceived {
		t.Errorf("router conservation violated: %d != %d+%d+%d", rReceived, rForwarded, rQuarantined, rShed)
	}
	if !strings.Contains(routerOut, "gap=0") || !strings.Contains(routerOut, "violations=0") {
		t.Errorf("router exit summary reports a conservation problem:\n%s", routerOut)
	}
	a2Out := a2.proc.sigterm(t)
	parseDrainLine(t, "a2", a2Out)
}

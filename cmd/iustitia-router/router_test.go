package main

// End-to-end cluster soak: real iustitia-router and iustitia-serve
// binaries under chaos — mid-frame connection tears, a SIGKILL crash-loop
// on one node, and a rolling restart with checkpoint handoff on the
// other — proving the cluster-wide conservation law, exact verdict
// equality against an in-process replay for the handoff node, and zero
// verdict loss across the checkpoint handoff.

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"iustitia"
	"iustitia/internal/cluster"
	"iustitia/internal/corpus"
	"iustitia/internal/flow"
	"iustitia/internal/ingest"
	"iustitia/internal/packet"
)

// buildBinary compiles the package at srcDir into dir.
func buildBinary(t *testing.T, dir, name, srcDir string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, srcDir)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", srcDir, err, out)
	}
	return bin
}

// trainModelSnapshot trains a small classifier on the synthetic corpus
// and saves it as a binary snapshot.
func trainModelSnapshot(t *testing.T, dir string) string {
	t.Helper()
	files, err := iustitia.SyntheticCorpus(1, 30, 2048, 4096)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := iustitia.Train(files)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "model.snap")
	if err := clf.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// syncBuf collects a subprocess's combined output safely across the
// goroutines exec.Cmd writes from.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// proc is one running binary under test.
type proc struct {
	cmd *exec.Cmd
	out *syncBuf
}

func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out := &syncBuf{}
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd, out: out}
	t.Cleanup(func() { _ = cmd.Process.Kill() })
	return p
}

// waitOutput polls the collected output until substr appears.
func (p *proc) waitOutput(t *testing.T, substr string) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		got := p.out.String()
		if strings.Contains(got, substr) {
			return got
		}
		if time.Now().After(deadline) {
			_ = p.cmd.Process.Kill()
			t.Fatalf("output never contained %q:\n%s", substr, got)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// sigterm sends SIGTERM and waits for a clean exit, returning the full
// output.
func (p *proc) sigterm(t *testing.T) string {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("process exited with %v\n%s", err, p.out.String())
		}
	case <-time.After(30 * time.Second):
		_ = p.cmd.Process.Kill()
		t.Fatalf("drain never finished:\n%s", p.out.String())
	}
	return p.out.String()
}

// sigkill kills the process without ceremony and reaps it.
func (p *proc) sigkill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = p.cmd.Wait()
}

// extractAddr pulls the address printed after prefix on its own line.
func extractAddr(t *testing.T, output, prefix string) string {
	t.Helper()
	for _, line := range strings.Split(output, "\n") {
		if rest, ok := strings.CutPrefix(line, prefix); ok {
			return strings.TrimSpace(rest)
		}
	}
	t.Fatalf("no %q line in output:\n%s", prefix, output)
	return ""
}

// serveNode wraps one iustitia-serve process and its addresses.
type serveNode struct {
	proc       *proc
	addr       string
	statusAddr string
}

// startServe launches a serve node. listen/status may be "127.0.0.1:0"
// (fresh node) or a predecessor's concrete addresses (rolling restart —
// Go listeners set SO_REUSEADDR, so rebinding is immediate).
func startServe(t *testing.T, bin, model, name, listen, status string, extra ...string) *serveNode {
	t.Helper()
	args := append([]string{
		"-load-model", model, "-listen", listen, "-status", status,
		"-shards", "2", "-b", "32", "-idle-flush", "0", "-node-name", name,
	}, extra...)
	p := startProc(t, bin, args...)
	banner := p.waitOutput(t, "status on ")
	return &serveNode{
		proc:       p,
		addr:       extractAddr(t, banner, "listening on "),
		statusAddr: extractAddr(t, banner, "status on "),
	}
}

// quiesceCluster polls the router's status endpoint until no packets are
// in flight (router law balances exactly) and the counters are stable
// across consecutive polls.
func quiesceCluster(t *testing.T, statusAddr string) cluster.ClusterSnapshot {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var prev cluster.ClusterLine
	stable := 0
	for time.Now().Before(deadline) {
		snap, err := cluster.ProbeCluster(statusAddr, 2*time.Second)
		if err == nil {
			cl := snap.Cluster
			inFlight := cl.Received - cl.Forwarded - cl.Quarantined - cl.Shed
			if inFlight == 0 && cl == prev {
				stable++
				if stable >= 2 {
					return snap
				}
			} else {
				stable = 0
			}
			prev = cl
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("cluster never quiesced; last: %+v", prev)
	return cluster.ClusterSnapshot{}
}

// waitAvailable polls until the router reports every node routable.
func waitClusterAvailable(t *testing.T, statusAddr string, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last cluster.ClusterLine
	for time.Now().Before(deadline) {
		if snap, err := cluster.ProbeCluster(statusAddr, 2*time.Second); err == nil {
			last = snap.Cluster
			if snap.Cluster.Available == want {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("cluster never reached %d available nodes; last: %+v", want, last)
}

// soakTrace generates one replayable trace with a distinct flow
// population per seed.
func soakTrace(t *testing.T, flows int, seed int64) *packet.Trace {
	t.Helper()
	cfg := packet.DefaultTraceConfig()
	cfg.Flows = flows
	cfg.Duration = 5 * time.Second
	cfg.MaxFlowBytes = 2 << 10
	cfg.Seed = seed
	trace, err := packet.Generate(cfg, corpus.NewGenerator(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

// streamTrace replays a trace into the router, optionally through chaos
// connections that tear frames mid-write and with a per-packet pacing
// delay (so faults injected mid-stream actually land mid-stream). It
// returns an error instead of failing the test: callers stream from
// goroutines.
func streamTrace(addr string, trace *packet.Trace, chaos *ingest.ConnChaos, pace time.Duration) error {
	client, err := ingest.NewClient(ingest.ClientConfig{
		Dial: func() (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			if err != nil || chaos == nil {
				return c, err
			}
			return chaos.Wrap(c), nil
		},
		MaxRetries: 20,
	})
	if err != nil {
		return err
	}
	defer client.Close()
	for i := range trace.Packets {
		if err := client.Send(&trace.Packets[i]); err != nil {
			return fmt.Errorf("send packet %d: %w", i, err)
		}
		if pace > 0 && i%16 == 0 {
			time.Sleep(pace)
		}
	}
	return nil
}

// engineSummary is the parsed per-node exit line.
type engineSummary struct {
	classified, fallback, dropped   int
	qText, qBinary, qEncrypted, cdb int
}

// parseEngineSummary extracts the drain summary a serve process prints on
// exit.
func parseEngineSummary(t *testing.T, output string) engineSummary {
	t.Helper()
	for _, line := range strings.Split(output, "\n") {
		var s engineSummary
		if _, err := fmt.Sscanf(line,
			"engine: classified %d flows, fallback %d, dropped %d; queues: text=%d binary=%d encrypted=%d; CDB size %d",
			&s.classified, &s.fallback, &s.dropped, &s.qText, &s.qBinary, &s.qEncrypted, &s.cdb); err == nil {
			return s
		}
	}
	t.Fatalf("no engine summary in output:\n%s", output)
	return engineSummary{}
}

// parseDrainLine extracts the transport counters a serve process prints
// on exit and asserts its conservation law.
func parseDrainLine(t *testing.T, name, output string) (received, admitted, quarantined, shed int) {
	t.Helper()
	var conns int
	for _, line := range strings.Split(output, "\n") {
		if _, err := fmt.Sscanf(line,
			"drained: received %d, admitted %d, quarantined %d, shed %d over %d connections",
			&received, &admitted, &quarantined, &shed, &conns); err == nil {
			if admitted+quarantined+shed != received {
				t.Errorf("node %s conservation violated at exit: received %d != admitted %d + quarantined %d + shed %d",
					name, received, admitted, quarantined, shed)
			}
			return received, admitted, quarantined, shed
		}
	}
	t.Fatalf("no drain line in %s output:\n%s", name, output)
	return 0, 0, 0, 0
}

// referenceEngine replays packet sequences in-process with the exact
// engine configuration the serve binaries run, returning the ground-truth
// stats for one node's share of the workload.
func referenceEngine(t *testing.T, model string, seqs ...[]packet.Packet) flow.EngineStats {
	t.Helper()
	clf, err := iustitia.LoadClassifierSnapshot(model)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := flow.NewParallelEngine(flow.EngineConfig{
		BufferSize:    32,
		Classifier:    clf,
		FallbackClass: corpus.Text,
		Faults:        flow.FaultPolicy{Tolerate: true},
		CDB: flow.CDBConfig{
			PurgeOnClose:  true,
			PurgeInactive: true,
			N:             4,
		},
	}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	maxSeen := time.Duration(0)
	for _, seq := range seqs {
		for i := range seq {
			if seq[i].Time > maxSeen {
				maxSeen = seq[i].Time
			}
			if _, err := engine.Process(&seq[i]); err != nil {
				t.Fatalf("reference Process: %v", err)
			}
		}
	}
	if _, err := engine.FlushAll(maxSeen + time.Minute); err != nil {
		t.Fatal(err)
	}
	return engine.Stats()
}

// ownedBy splits a trace into the packets the ring assigns to one node —
// the same DefaultReplicas ring the router builds, so the split is exact.
func ownedBy(ring *cluster.Ring, trace *packet.Trace, node string) []packet.Packet {
	var out []packet.Packet
	for i := range trace.Packets {
		if owner, ok := ring.Owner(cluster.PointOfTuple(trace.Packets[i].Tuple)); ok && owner == node {
			out = append(out, trace.Packets[i])
		}
	}
	return out
}

// TestClusterSoak is the chaos soak from the roadmap's cluster-mode item:
//
//  1. Two serve nodes behind a router under the requeue policy.
//  2. Chaos phase: node b SIGKILLed into a crash-loop (killed again right
//     after coming back) and restarted on the same addresses, while a
//     trace streams through connections that tear frames mid-write.
//  3. Rolling restart: node a drains to a final checkpoint, a successor
//     resumes it under the same node name, and the remaining trace
//     streams on.
//
// Proven at the end: the cluster-wide conservation law (per node and
// federated), zero verdict loss across the checkpoint handoff, and exact
// verdict equality between the handoff node and an in-process replay of
// its share of both traces.
func TestClusterSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak builds and runs real binaries")
	}
	dir := t.TempDir()
	routerBin := buildBinary(t, dir, "iustitia-router", ".")
	serveBin := buildBinary(t, dir, "iustitia-serve", "../iustitia-serve")
	model := trainModelSnapshot(t, dir)
	ckptA := filepath.Join(dir, "node-a.ckpt")

	a := startServe(t, serveBin, model, "a", "127.0.0.1:0", "127.0.0.1:0", "-checkpoint", ckptA)
	b := startServe(t, serveBin, model, "b", "127.0.0.1:0", "127.0.0.1:0")

	router := startProc(t, routerBin,
		"-listen", "127.0.0.1:0", "-status", "127.0.0.1:0",
		"-node", "a="+a.addr+","+a.statusAddr,
		"-node", "b="+b.addr+","+b.statusAddr,
		"-policy", "requeue", "-requeue-timeout", "60s",
		"-probe-interval", "50ms", "-drain-timeout", "30s")
	banner := router.waitOutput(t, "routing to 2 nodes")
	routerAddr := extractAddr(t, banner, "listening on ")
	routerStatus := extractAddr(t, banner, "status on ")
	waitClusterAvailable(t, routerStatus, 2)

	trace0 := soakTrace(t, 50, 31)
	trace1 := soakTrace(t, 50, 32)

	// --- Chaos phase: stream trace0 through tearing connections while
	// node b is SIGKILLed mid-stream and crash-looped back up.
	chaos := ingest.NewConnChaos(ingest.ConnChaosConfig{
		Seed:       7,
		ChunkRate:  0.3,
		ResetEvery: 16 << 10,
		MaxResets:  6,
	})
	streamErr := make(chan error, 1)
	go func() { streamErr <- streamTrace(routerAddr, trace0, chaos, 2*time.Millisecond) }()

	// Kill b once some traffic has flowed, then crash-loop it: the first
	// successor is killed the moment it reports in, the second stays.
	time.Sleep(150 * time.Millisecond)
	bAddr, bStatus := b.addr, b.statusAddr
	b.proc.sigkill(t)
	b1 := startServe(t, serveBin, model, "b", bAddr, bStatus)
	b1.proc.sigkill(t)
	b2 := startServe(t, serveBin, model, "b", bAddr, bStatus)
	if err := <-streamErr; err != nil {
		t.Fatalf("chaos stream: %v", err)
	}
	waitClusterAvailable(t, routerStatus, 2)
	snap := quiesceCluster(t, routerStatus)

	if chaos.Stats().Resets == 0 {
		t.Error("chaos injected no mid-frame tears; soak is vacuous")
	}
	if snap.Cluster.Quarantined == 0 {
		t.Error("router quarantined nothing though frames were torn")
	}
	if snap.Cluster.Gap != 0 || snap.Cluster.Violations != 0 {
		t.Errorf("cluster conservation under chaos: gap=%d violations=%d, want 0/0\n%+v",
			snap.Cluster.Gap, snap.Cluster.Violations, snap.Cluster)
	}

	// --- Rolling restart with checkpoint handoff: drain a, resume its
	// final checkpoint under the same name and addresses.
	aAddr, aStatus := a.addr, a.statusAddr
	aOut := a.proc.sigterm(t)
	if !strings.Contains(aOut, "final checkpoint saved to "+ckptA) {
		t.Fatalf("node a drained without a final checkpoint:\n%s", aOut)
	}
	aSummary := parseEngineSummary(t, aOut)
	parseDrainLine(t, "a", aOut)

	a2 := startServe(t, serveBin, model, "a", aAddr, aStatus, "-checkpoint", ckptA, "-resume", ckptA)
	resumeBanner := a2.proc.waitOutput(t, "resumed from ")
	var resumedClassified, resumedCDB int
	if _, err := fmt.Sscanf(extractLine(t, resumeBanner, "resumed from "),
		"resumed from %s %d classified flows, %d CDB records",
		new(string), &resumedClassified, &resumedCDB); err != nil {
		t.Fatalf("cannot parse resume banner: %v\n%s", err, resumeBanner)
	}
	// Zero verdict loss across the handoff: every verdict the
	// predecessor accumulated is present in the successor before it
	// serves a single packet.
	if resumedClassified != aSummary.classified {
		t.Errorf("handoff lost verdicts: predecessor classified %d, successor resumed %d",
			aSummary.classified, resumedClassified)
	}
	waitClusterAvailable(t, routerStatus, 2)

	// --- Post-handoff phase: the second trace (distinct flows) streams
	// clean; requeue policy has preserved flow→node affinity throughout.
	if err := streamTrace(routerAddr, trace1, nil, 0); err != nil {
		t.Fatalf("post-handoff stream: %v", err)
	}
	quiesceCluster(t, routerStatus)

	routerOut := router.sigterm(t)
	var rReceived, rForwarded, rQuarantined, rShed, rConns int
	if _, err := fmt.Sscanf(extractLine(t, routerOut, "drained: "),
		"drained: received %d, forwarded %d, quarantined %d, shed %d over %d connections",
		&rReceived, &rForwarded, &rQuarantined, &rShed, &rConns); err != nil {
		t.Fatalf("cannot parse router drain line: %v\n%s", err, routerOut)
	}
	if rForwarded+rQuarantined+rShed != rReceived {
		t.Errorf("router conservation violated: %d != %d+%d+%d", rReceived, rForwarded, rQuarantined, rShed)
	}
	if rShed != 0 {
		t.Errorf("router shed %d packets under the requeue policy", rShed)
	}
	if !strings.Contains(routerOut, "gap=0") || !strings.Contains(routerOut, "violations=0") {
		t.Errorf("router exit summary reports a conservation problem:\n%s", routerOut)
	}

	a2Out := a2.proc.sigterm(t)
	b2Out := b2.proc.sigterm(t)
	a2Summary := parseEngineSummary(t, a2Out)
	parseDrainLine(t, "a2", a2Out)
	parseDrainLine(t, "b2", b2Out)

	// --- Verdict equality for the handoff node: node a was never killed,
	// only drained and resumed, so its final counters must exactly match
	// an in-process replay of its ring share of both traces. (Node b was
	// SIGKILLed with in-memory state — the cluster stays conserved, but
	// its lost verdicts are exactly why the rolling-restart path exists.)
	ring := cluster.NewRing(0)
	if err := ring.Add("a"); err != nil {
		t.Fatal(err)
	}
	if err := ring.Add("b"); err != nil {
		t.Fatal(err)
	}
	want := referenceEngine(t, model, ownedBy(ring, trace0, "a"), ownedBy(ring, trace1, "a"))
	if a2Summary.classified != want.Classified || a2Summary.fallback != want.Fallback ||
		a2Summary.dropped != want.Dropped ||
		a2Summary.qText != want.QueueCounts[corpus.Text] ||
		a2Summary.qBinary != want.QueueCounts[corpus.Binary] ||
		a2Summary.qEncrypted != want.QueueCounts[corpus.Encrypted] {
		t.Errorf("handoff node verdicts diverge from in-process replay:\n  node:      %+v\n  reference: classified=%d fallback=%d dropped=%d queues=%v",
			a2Summary, want.Classified, want.Fallback, want.Dropped, want.QueueCounts)
	}
	if a2Summary.classified <= aSummary.classified {
		t.Errorf("successor classified %d flows, no more than the predecessor's %d — phase-2 traffic vanished",
			a2Summary.classified, aSummary.classified)
	}
}

// adminCmd sends one admin verb to the router's status endpoint and
// returns the full reply (one line for ADD/REMOVE, several for LIST).
func adminCmd(t *testing.T, statusAddr, cmd string) string {
	t.Helper()
	c, err := net.Dial("tcp", statusAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// ADD blocks on node availability plus a migration; be generous.
	_ = c.SetDeadline(time.Now().Add(60 * time.Second))
	if _, err := fmt.Fprintf(c, "%s\n", cmd); err != nil {
		t.Fatal(err)
	}
	reply, err := io.ReadAll(c)
	if err != nil {
		t.Fatalf("admin %q: %v", cmd, err)
	}
	return strings.TrimSpace(string(reply))
}

// TestMembershipChurnSoak extends the cluster soak with live membership
// churn on real binaries:
//
//  1. A node is ADDed through the router's admin endpoint mid-stream:
//     the ring change migrates the arcs it gains, flow state included.
//  2. A node is SIGKILLed mid-stream and resumed from its periodic node
//     checkpoint; the router's replay journal re-delivers everything
//     past the checkpoint's watermark with original sequences.
//  3. The added node is REMOVEd live; its flows migrate out before it
//     leaves the ring.
//
// Proven at the end: gap 0 and zero violations at every quiesce point,
// the admin/membership/replication exit counters, and aggregate verdict
// equality — classified/fallback/dropped/queue counts summed across all
// three engines exactly match one uninterrupted in-process replay of all
// three traces, i.e. no verdict was lost or double-counted across an
// add, a crash, and a remove.
func TestMembershipChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("membership churn soak builds and runs real binaries")
	}
	dir := t.TempDir()
	routerBin := buildBinary(t, dir, "iustitia-router", ".")
	serveBin := buildBinary(t, dir, "iustitia-serve", "../iustitia-serve")
	model := trainModelSnapshot(t, dir)
	ckptB := filepath.Join(dir, "node-b.ckpt")

	a := startServe(t, serveBin, model, "a", "127.0.0.1:0", "127.0.0.1:0")
	// b checkpoints on a cadence slow enough that the SIGKILL below lands
	// with sequenced traffic delivered past the last durable watermark —
	// the journaled tail the router must replay.
	b := startServe(t, serveBin, model, "b", "127.0.0.1:0", "127.0.0.1:0",
		"-checkpoint", ckptB, "-checkpoint-interval", "2s")

	router := startProc(t, routerBin,
		"-listen", "127.0.0.1:0", "-status", "127.0.0.1:0",
		"-node", "a="+a.addr+","+a.statusAddr,
		"-node", "b="+b.addr+","+b.statusAddr,
		"-policy", "requeue", "-requeue-timeout", "60s",
		"-probe-interval", "50ms", "-admin-timeout", "15s",
		"-drain-timeout", "30s")
	banner := router.waitOutput(t, "routing to 2 nodes")
	routerAddr := extractAddr(t, banner, "listening on ")
	routerStatus := extractAddr(t, banner, "status on ")
	waitClusterAvailable(t, routerStatus, 2)

	trace0 := soakTrace(t, 50, 41)
	trace1 := soakTrace(t, 50, 42)
	trace2 := soakTrace(t, 50, 43)

	// --- Phase 1: node c joins through the admin endpoint while trace0
	// streams. Routing pauses under the membership gate during the arc
	// migration; the client just feels backpressure.
	c := startServe(t, serveBin, model, "c", "127.0.0.1:0", "127.0.0.1:0")
	streamErr := make(chan error, 1)
	go func() { streamErr <- streamTrace(routerAddr, trace0, nil, 2*time.Millisecond) }()
	time.Sleep(100 * time.Millisecond)
	if reply := adminCmd(t, routerStatus, "ADD c="+c.addr+","+c.statusAddr); reply != "OK added c" {
		t.Fatalf("ADD reply %q", reply)
	}
	if reply := adminCmd(t, routerStatus, "ADD c="+c.addr+","+c.statusAddr); !strings.Contains(reply, "already on the ring") {
		t.Errorf("duplicate ADD reply %q, want the ErrNodeExists message", reply)
	}
	if err := <-streamErr; err != nil {
		t.Fatalf("phase-1 stream: %v", err)
	}
	waitClusterAvailable(t, routerStatus, 3)
	snap := quiesceCluster(t, routerStatus)
	if snap.Cluster.Gap != 0 || snap.Cluster.Violations != 0 {
		t.Errorf("conservation after live add: gap=%d violations=%d, want 0/0", snap.Cluster.Gap, snap.Cluster.Violations)
	}
	if list := adminCmd(t, routerStatus, "LIST"); !strings.Contains(list, "NODE c") ||
		!strings.Contains(list, "OK 3 nodes") {
		t.Errorf("LIST after add:\n%s", list)
	}

	// Make sure b's periodic node checkpoint has covered sequenced traffic
	// before the crash — the resume watermark must be meaningful.
	ackDeadline := time.Now().Add(10 * time.Second)
	for {
		ns, err := cluster.ProbeStatus(b.statusAddr, 2*time.Second)
		if err == nil && ns.AckedSeq > 0 {
			break
		}
		if time.Now().After(ackDeadline) {
			t.Fatalf("node b never acked a checkpoint; last: %+v err=%v", ns, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// --- Phase 2: SIGKILL b mid-stream. Its in-memory state dies with it;
	// the successor resumes from the periodic checkpoint and the router
	// replays the journaled tail.
	go func() { streamErr <- streamTrace(routerAddr, trace1, nil, 2*time.Millisecond) }()
	time.Sleep(150 * time.Millisecond)
	bAddr, bStatus := b.addr, b.statusAddr
	// Kill only once b holds sequenced traffic past its durable watermark,
	// so the crash provably loses in-memory state the journal must replay.
	killDeadline := time.Now().Add(10 * time.Second)
	for {
		ns, err := cluster.ProbeStatus(bStatus, time.Second)
		if err == nil && ns.SeenSeq > ns.AckedSeq {
			break
		}
		if time.Now().After(killDeadline) {
			t.Fatalf("node b never ran ahead of its checkpoint; last err=%v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	b.proc.sigkill(t)
	// Let the router observe the loss edge before the successor rebinds:
	// that is what arms the journal replay. (A restart faster than one
	// probe interval can mask a crash entirely — and with it, the replay
	// this soak exists to exercise.)
	waitClusterAvailable(t, routerStatus, 2)
	b2 := startServe(t, serveBin, model, "b", bAddr, bStatus,
		"-checkpoint", ckptB, "-checkpoint-interval", "2s", "-resume", ckptB)
	b2.proc.waitOutput(t, "resume watermark: seq ")
	if err := <-streamErr; err != nil {
		t.Fatalf("phase-2 stream: %v", err)
	}
	waitClusterAvailable(t, routerStatus, 3)
	snap = quiesceCluster(t, routerStatus)
	if snap.Cluster.Gap != 0 || snap.Cluster.Violations != 0 {
		t.Errorf("conservation after crash replay: gap=%d violations=%d, want 0/0", snap.Cluster.Gap, snap.Cluster.Violations)
	}

	// --- Phase 3: c leaves live — its flow state migrates to the nodes
	// gaining its arcs — then a clean trace proves the 2-node ring routes.
	if reply := adminCmd(t, routerStatus, "REMOVE c"); reply != "OK removed c" {
		t.Fatalf("REMOVE reply %q", reply)
	}
	if err := streamTrace(routerAddr, trace2, nil, 0); err != nil {
		t.Fatalf("phase-3 stream: %v", err)
	}
	snap = quiesceCluster(t, routerStatus)
	if snap.Cluster.Nodes != 2 {
		t.Errorf("cluster reports %d nodes after remove, want 2", snap.Cluster.Nodes)
	}
	if snap.Cluster.Gap != 0 || snap.Cluster.Violations != 0 {
		t.Errorf("conservation after live remove: gap=%d violations=%d, want 0/0", snap.Cluster.Gap, snap.Cluster.Violations)
	}

	routerOut := router.sigterm(t)
	var rReceived, rForwarded, rQuarantined, rShed, rConns int
	if _, err := fmt.Sscanf(extractLine(t, routerOut, "drained: "),
		"drained: received %d, forwarded %d, quarantined %d, shed %d over %d connections",
		&rReceived, &rForwarded, &rQuarantined, &rShed, &rConns); err != nil {
		t.Fatalf("cannot parse router drain line: %v\n%s", err, routerOut)
	}
	if rForwarded+rQuarantined+rShed != rReceived {
		t.Errorf("router conservation violated: %d != %d+%d+%d", rReceived, rForwarded, rQuarantined, rShed)
	}
	if rShed != 0 {
		t.Errorf("router shed %d packets across the churn", rShed)
	}
	var replayed, replayDropped, journalDropped, journaled int
	if _, err := fmt.Sscanf(extractLine(t, routerOut, "replication: "),
		"replication: replayed %d, replay-dropped %d, journal-dropped %d, journaled %d",
		&replayed, &replayDropped, &journalDropped, &journaled); err != nil {
		t.Fatalf("cannot parse replication line: %v\n%s", err, routerOut)
	}
	if replayed == 0 {
		t.Error("crash produced no journal replays; the soak did not exercise in-flight replication")
	}
	if replayDropped != 0 || journalDropped != 0 {
		t.Errorf("replication lost packets: replay-dropped=%d journal-dropped=%d", replayDropped, journalDropped)
	}
	var added, removed, migrated, skipped int
	if _, err := fmt.Sscanf(extractLine(t, routerOut, "membership: "),
		"membership: nodes-added %d, nodes-removed %d, migrated-flows %d, migrations-skipped %d",
		&added, &removed, &migrated, &skipped); err != nil {
		t.Fatalf("cannot parse membership line: %v\n%s", err, routerOut)
	}
	if added != 1 || removed != 1 {
		t.Errorf("membership counters added=%d removed=%d, want 1/1", added, removed)
	}
	if migrated == 0 {
		t.Error("membership churn migrated no flows")
	}

	aOut := a.proc.sigterm(t)
	b2Out := b2.proc.sigterm(t)
	cOut := c.proc.sigterm(t)
	parseDrainLine(t, "a", aOut)
	parseDrainLine(t, "b2", b2Out)
	parseDrainLine(t, "c", cOut)
	aSum := parseEngineSummary(t, aOut)
	b2Sum := parseEngineSummary(t, b2Out)
	cSum := parseEngineSummary(t, cOut)

	// Aggregate verdict equality: verdicts land on whichever node owned
	// the flow when it classified, but summed across all engines they must
	// exactly match one uninterrupted replay — the add, the crash, and the
	// remove neither lost nor double-counted a single flow.
	want := referenceEngine(t, model, trace0.Packets, trace1.Packets, trace2.Packets)
	gotClassified := aSum.classified + b2Sum.classified + cSum.classified
	gotFallback := aSum.fallback + b2Sum.fallback + cSum.fallback
	gotDropped := aSum.dropped + b2Sum.dropped + cSum.dropped
	gotText := aSum.qText + b2Sum.qText + cSum.qText
	gotBinary := aSum.qBinary + b2Sum.qBinary + cSum.qBinary
	gotEncrypted := aSum.qEncrypted + b2Sum.qEncrypted + cSum.qEncrypted
	if gotClassified != want.Classified || gotFallback != want.Fallback || gotDropped != want.Dropped ||
		gotText != want.QueueCounts[corpus.Text] ||
		gotBinary != want.QueueCounts[corpus.Binary] ||
		gotEncrypted != want.QueueCounts[corpus.Encrypted] {
		t.Errorf("cluster verdicts diverge from uninterrupted replay:\n  cluster:   classified=%d fallback=%d dropped=%d queues=[%d %d %d]\n  reference: classified=%d fallback=%d dropped=%d queues=%v",
			gotClassified, gotFallback, gotDropped, gotText, gotBinary, gotEncrypted,
			want.Classified, want.Fallback, want.Dropped, want.QueueCounts)
	}
}

// extractLine returns the first line starting with prefix.
func extractLine(t *testing.T, output, prefix string) string {
	t.Helper()
	for _, line := range strings.Split(output, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	t.Fatalf("no %q line in output:\n%s", prefix, output)
	return ""
}

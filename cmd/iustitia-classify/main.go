// Command iustitia-classify labels the content nature of files or of a
// synthetic packet trace using a trained model.
//
// Classify files from disk (reads each file's first b bytes):
//
//	iustitia-classify -model model.json file1 file2 ...
//
// Replay a synthetic trace through the online engine:
//
//	iustitia-classify -model model.json -trace -flows 2000
//
// Replay with production-style overload protection and fault tolerance —
// a bounded pending table, load shedding to a fallback queue, and a
// classifier-failure breaker — optionally demonstrated against injected
// classifier faults:
//
//	iustitia-classify -model model.json -trace -max-pending 4096 -evict shed \
//	    -fallback binary -tolerate -cdb-cap 100000 -chaos-error 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"iustitia"
	"iustitia/internal/corpus"
	"iustitia/internal/flow"
	"iustitia/internal/packet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iustitia-classify:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelPath  = flag.String("model", "model.json", "trained model path")
		buffer     = flag.Int("b", 32, "bytes of each input inspected")
		trace      = flag.Bool("trace", false, "classify a synthetic packet trace instead of files")
		flows      = flag.Int("flows", 2000, "trace flows (with -trace)")
		seed       = flag.Int64("seed", 42, "trace seed (with -trace)")
		replayPath = flag.String("replay", "", "replay a trace file written by iustitia-trace -out")

		maxPending = flag.Int("max-pending", 0, "cap on concurrently buffered flows (0 = unbounded)")
		evict      = flag.String("evict", "oldest", "policy at the pending cap: oldest|partial|shed")
		fallback   = flag.String("fallback", "text", "fallback class for shed flows and tolerated failures: text|binary|encrypted")
		tolerate   = flag.Bool("tolerate", false, "route classifier failures to the fallback class instead of aborting")
		cdbCap     = flag.Int("cdb-cap", 0, "hard cap on classification-database records (0 = unbounded)")

		chaosError = flag.Float64("chaos-error", 0, "inject classifier errors at this rate (demo of -tolerate)")
		chaosPanic = flag.Float64("chaos-panic", 0, "inject classifier panics at this rate")
		chaosSeed  = flag.Int64("chaos-seed", 1, "fault-injection seed")
	)
	flag.Parse()

	policy, err := flow.ParseEvictPolicy(*evict)
	if err != nil {
		return err
	}
	fbClass, err := parseClass(*fallback)
	if err != nil {
		return err
	}
	eng := engineSetup{
		maxPending: *maxPending,
		policy:     policy,
		fallback:   fbClass,
		tolerate:   *tolerate,
		cdbCap:     *cdbCap,
		chaosError: *chaosError,
		chaosPanic: *chaosPanic,
		chaosSeed:  *chaosSeed,
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	defer mf.Close()
	clf, err := iustitia.LoadClassifier(mf)
	if err != nil {
		return err
	}

	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := packet.ReadTrace(f)
		if err != nil {
			return err
		}
		return replay(clf, *buffer, eng, tr)
	}
	if *trace {
		return replayTrace(clf, *buffer, eng, *flows, *seed)
	}
	if flag.NArg() == 0 {
		return fmt.Errorf("no input files (or pass -trace)")
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		window := data
		if len(window) > *buffer {
			window = window[:*buffer]
		}
		class, err := clf.Classify(window)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		vec, err := clf.Features(window)
		if err != nil {
			return err
		}
		fmt.Printf("%-40s %-10s features=%.3v\n", path, class, vec)
	}
	return nil
}

// engineSetup carries the overload/fault-tolerance flags into replay.
type engineSetup struct {
	maxPending int
	policy     flow.EvictPolicy
	fallback   corpus.Class
	tolerate   bool
	cdbCap     int
	chaosError float64
	chaosPanic float64
	chaosSeed  int64
}

// parseClass maps a flag value to its class.
func parseClass(s string) (corpus.Class, error) {
	for c, name := range corpus.ClassNames() {
		if s == name {
			return corpus.Class(c), nil
		}
	}
	return 0, fmt.Errorf("unknown class %q (want text|binary|encrypted)", s)
}

// replayTrace generates a synthetic gateway trace and pushes it through the
// online engine, reporting throughput and ground-truth accuracy.
func replayTrace(clf *iustitia.Classifier, buffer int, eng engineSetup, flows int, seed int64) error {
	cfg := packet.DefaultTraceConfig()
	cfg.Flows = flows
	cfg.Seed = seed
	tr, err := packet.Generate(cfg, corpus.NewGenerator(seed))
	if err != nil {
		return err
	}
	return replay(clf, buffer, eng, tr)
}

// replay pushes a trace through the online engine, reporting throughput,
// ground-truth accuracy, and the overload/failure counters.
func replay(clf *iustitia.Classifier, buffer int, eng engineSetup, tr *packet.Trace) error {
	var classifier flow.Classifier = clf
	var chaos *flow.ChaosClassifier
	if eng.chaosError > 0 || eng.chaosPanic > 0 {
		chaos = flow.NewChaosClassifier(clf, flow.ChaosConfig{
			Seed:      eng.chaosSeed,
			ErrorRate: eng.chaosError,
			PanicRate: eng.chaosPanic,
		})
		classifier = chaos
	}
	engine, err := flow.NewEngine(flow.EngineConfig{
		BufferSize:    buffer,
		Classifier:    classifier,
		IdleFlush:     2 * time.Second,
		MaxPending:    eng.maxPending,
		Eviction:      eng.policy,
		FallbackClass: eng.fallback,
		Faults:        flow.FaultPolicy{Tolerate: eng.tolerate},
		CDB: flow.CDBConfig{
			PurgeOnClose:  true,
			PurgeInactive: true,
			N:             4,
			MaxRecords:    eng.cdbCap,
		},
	})
	if err != nil {
		return err
	}

	start := time.Now()
	var lastTime time.Duration
	for i := range tr.Packets {
		p := &tr.Packets[i]
		if _, err := engine.Process(p); err != nil {
			return fmt.Errorf("packet %d: %w (use -tolerate to degrade instead of aborting)", i, err)
		}
		lastTime = p.Time
	}
	if _, err := engine.FlushAll(lastTime + time.Minute); err != nil {
		return fmt.Errorf("%w (use -tolerate to degrade instead of aborting)", err)
	}
	elapsed := time.Since(start)

	correct, labeled := 0, 0
	for tuple, info := range tr.Flows {
		got, ok := engine.Label(tuple)
		if !ok {
			continue
		}
		labeled++
		if got == info.Class {
			correct++
		}
	}
	stats := engine.Stats()
	fmt.Printf("replayed %d packets / %d flows in %s (%.0f pkt/s)\n",
		len(tr.Packets), len(tr.Flows), elapsed.Round(time.Millisecond),
		float64(len(tr.Packets))/elapsed.Seconds())
	fmt.Printf("labeled %d flows, ground-truth accuracy %.1f%%\n",
		labeled, 100*float64(correct)/float64(max(1, labeled)))
	fmt.Printf("queues: text=%d binary=%d encrypted=%d; CDB size %d\n",
		stats.QueueCounts[corpus.Text], stats.QueueCounts[corpus.Binary],
		stats.QueueCounts[corpus.Encrypted], stats.CDB.Size)
	if eng.maxPending > 0 || eng.tolerate || eng.cdbCap > 0 || chaos != nil {
		degraded := ""
		if stats.Degraded > 0 {
			degraded = " [DEGRADED]"
		}
		fmt.Printf("governor: cap=%d policy=%s shed=%d evicted=%d failed=%d fallback=%d cdb-pressure-evictions=%d%s\n",
			eng.maxPending, eng.policy, stats.Shed, stats.Evicted, stats.Failed,
			stats.Fallback, stats.CDB.RemovedByPressure, degraded)
	}
	if chaos != nil {
		cs := chaos.Stats()
		fmt.Printf("chaos: %d calls, %d injected errors, %d injected panics (seed %d)\n",
			cs.Calls, cs.InjectedErrors, cs.InjectedPanics, eng.chaosSeed)
	}
	return nil
}

// Command iustitia-classify labels the content nature of files or of a
// synthetic packet trace using a trained model.
//
// Classify files from disk (reads each file's first b bytes):
//
//	iustitia-classify -model model.json file1 file2 ...
//
// Replay a synthetic trace through the online engine:
//
//	iustitia-classify -model model.json -trace -flows 2000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"iustitia"
	"iustitia/internal/corpus"
	"iustitia/internal/packet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iustitia-classify:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelPath  = flag.String("model", "model.json", "trained model path")
		buffer     = flag.Int("b", 32, "bytes of each input inspected")
		trace      = flag.Bool("trace", false, "classify a synthetic packet trace instead of files")
		flows      = flag.Int("flows", 2000, "trace flows (with -trace)")
		seed       = flag.Int64("seed", 42, "trace seed (with -trace)")
		replayPath = flag.String("replay", "", "replay a trace file written by iustitia-trace -out")
	)
	flag.Parse()

	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	defer mf.Close()
	clf, err := iustitia.LoadClassifier(mf)
	if err != nil {
		return err
	}

	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := packet.ReadTrace(f)
		if err != nil {
			return err
		}
		return replay(clf, *buffer, tr)
	}
	if *trace {
		return replayTrace(clf, *buffer, *flows, *seed)
	}
	if flag.NArg() == 0 {
		return fmt.Errorf("no input files (or pass -trace)")
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		window := data
		if len(window) > *buffer {
			window = window[:*buffer]
		}
		class, err := clf.Classify(window)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		vec, err := clf.Features(window)
		if err != nil {
			return err
		}
		fmt.Printf("%-40s %-10s features=%.3v\n", path, class, vec)
	}
	return nil
}

// replayTrace generates a synthetic gateway trace and pushes it through the
// online monitor, reporting throughput and ground-truth accuracy.
func replayTrace(clf *iustitia.Classifier, buffer, flows int, seed int64) error {
	cfg := packet.DefaultTraceConfig()
	cfg.Flows = flows
	cfg.Seed = seed
	tr, err := packet.Generate(cfg, corpus.NewGenerator(seed))
	if err != nil {
		return err
	}
	return replay(clf, buffer, tr)
}

// replay pushes a trace through the online monitor, reporting throughput
// and ground-truth accuracy.
func replay(clf *iustitia.Classifier, buffer int, tr *packet.Trace) error {
	mon, err := iustitia.NewMonitor(clf,
		iustitia.WithMonitorBufferSize(buffer),
		iustitia.WithPurging(4),
		iustitia.WithIdleFlush(2*time.Second),
	)
	if err != nil {
		return err
	}

	start := time.Now()
	var lastTime time.Duration
	for i := range tr.Packets {
		p := &tr.Packets[i]
		if _, err := mon.Process(p); err != nil {
			return err
		}
		lastTime = p.Time
	}
	if _, err := mon.FlushAll(lastTime + time.Minute); err != nil {
		return err
	}
	elapsed := time.Since(start)

	correct, labeled := 0, 0
	for tuple, info := range tr.Flows {
		got, ok := mon.Label(tuple)
		if !ok {
			continue
		}
		labeled++
		if got == info.Class {
			correct++
		}
	}
	stats := mon.Stats()
	fmt.Printf("replayed %d packets / %d flows in %s (%.0f pkt/s)\n",
		len(tr.Packets), len(tr.Flows), elapsed.Round(time.Millisecond),
		float64(len(tr.Packets))/elapsed.Seconds())
	fmt.Printf("labeled %d flows, ground-truth accuracy %.1f%%\n",
		labeled, 100*float64(correct)/float64(max(1, labeled)))
	fmt.Printf("queues: text=%d binary=%d encrypted=%d; CDB size %d\n",
		stats.QueueCounts[corpus.Text], stats.QueueCounts[corpus.Binary],
		stats.QueueCounts[corpus.Encrypted], stats.CDBSize)
	return nil
}

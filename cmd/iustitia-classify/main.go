// Command iustitia-classify labels the content nature of files or of a
// synthetic packet trace using a trained model.
//
// Classify files from disk (reads each file's first b bytes):
//
//	iustitia-classify -model model.json file1 file2 ...
//
// Replay a synthetic trace through the online engine:
//
//	iustitia-classify -model model.json -trace -flows 2000
//
// Replay with production-style overload protection and fault tolerance —
// a bounded pending table, load shedding to a fallback queue, and a
// classifier-failure breaker — optionally demonstrated against injected
// classifier faults:
//
//	iustitia-classify -model model.json -trace -max-pending 4096 -evict shed \
//	    -fallback binary -tolerate -cdb-cap 100000 -chaos-error 0.05
//
// Durable operation: convert a JSON model to a checksummed binary
// snapshot, then replay with periodic checkpoints; a SIGINT/SIGTERM
// flushes a final checkpoint before exit, and -resume continues from it
// (falling back to a cold start, with a warning, if the checkpoint is
// unusable):
//
//	iustitia-classify -model model.json -save-model model.snap
//	iustitia-classify -load-model model.snap -trace -checkpoint state.ckpt
//	iustitia-classify -load-model model.snap -trace -checkpoint state.ckpt \
//	    -resume state.ckpt
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iustitia"
	"iustitia/internal/corpus"
	"iustitia/internal/flow"
	"iustitia/internal/packet"
	"iustitia/internal/persist"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iustitia-classify:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelPath  = flag.String("model", "model.json", "trained model path")
		buffer     = flag.Int("b", 32, "bytes of each input inspected")
		trace      = flag.Bool("trace", false, "classify a synthetic packet trace instead of files")
		flows      = flag.Int("flows", 2000, "trace flows (with -trace)")
		seed       = flag.Int64("seed", 42, "trace seed (with -trace)")
		replayPath = flag.String("replay", "", "replay a trace file written by iustitia-trace -out")

		maxPending = flag.Int("max-pending", 0, "cap on concurrently buffered flows (0 = unbounded)")
		evict      = flag.String("evict", "oldest", "policy at the pending cap: oldest|partial|shed")
		fallback   = flag.String("fallback", "text", "fallback class for shed flows and tolerated failures: text|binary|encrypted")
		tolerate   = flag.Bool("tolerate", false, "route classifier failures to the fallback class instead of aborting")
		cdbCap     = flag.Int("cdb-cap", 0, "hard cap on classification-database records (0 = unbounded)")

		chaosError = flag.Float64("chaos-error", 0, "inject classifier errors at this rate (demo of -tolerate)")
		chaosPanic = flag.Float64("chaos-panic", 0, "inject classifier panics at this rate")
		chaosSeed  = flag.Int64("chaos-seed", 1, "fault-injection seed")

		saveModel  = flag.String("save-model", "", "write the loaded model as a binary snapshot to this path, atomically")
		loadModel  = flag.String("load-model", "", "load the model from a binary snapshot instead of -model JSON")
		checkpoint = flag.String("checkpoint", "", "write periodic engine checkpoints to this path; SIGINT/SIGTERM flushes a final one")
		ckptEvery  = flag.Int("checkpoint-every", 1000, "classified flows between periodic checkpoints (with -checkpoint)")
		resume     = flag.String("resume", "", "restore engine state from this checkpoint before replay (cold start if unusable)")
		pace       = flag.Duration("pace", 0, "sleep this long between replayed packets (throttle for demos and shutdown tests)")
	)
	flag.Parse()

	policy, err := flow.ParseEvictPolicy(*evict)
	if err != nil {
		return err
	}
	fbClass, err := parseClass(*fallback)
	if err != nil {
		return err
	}
	eng := engineSetup{
		maxPending: *maxPending,
		policy:     policy,
		fallback:   fbClass,
		tolerate:   *tolerate,
		cdbCap:     *cdbCap,
		chaosError: *chaosError,
		chaosPanic: *chaosPanic,
		chaosSeed:  *chaosSeed,
		checkpoint: *checkpoint,
		ckptEvery:  *ckptEvery,
		resume:     *resume,
		pace:       *pace,
	}

	var clf *iustitia.Classifier
	if *loadModel != "" {
		clf, err = iustitia.LoadClassifierSnapshot(*loadModel)
		if err != nil {
			return err
		}
	} else {
		mf, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		clf, err = iustitia.LoadClassifier(mf)
		mf.Close()
		if err != nil {
			return err
		}
	}
	if *saveModel != "" {
		if err := clf.SaveSnapshot(*saveModel); err != nil {
			return err
		}
		fmt.Printf("saved model snapshot to %s\n", *saveModel)
		if !*trace && *replayPath == "" && flag.NArg() == 0 {
			return nil
		}
	}

	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := packet.ReadTrace(f)
		if err != nil {
			return err
		}
		return replay(clf, *buffer, eng, tr)
	}
	if *trace {
		return replayTrace(clf, *buffer, eng, *flows, *seed)
	}
	if flag.NArg() == 0 {
		return fmt.Errorf("no input files (or pass -trace)")
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		window := data
		if len(window) > *buffer {
			window = window[:*buffer]
		}
		class, err := clf.Classify(window)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		vec, err := clf.Features(window)
		if err != nil {
			return err
		}
		fmt.Printf("%-40s %-10s features=%.3v\n", path, class, vec)
	}
	return nil
}

// engineSetup carries the overload/fault-tolerance/durability flags into
// replay.
type engineSetup struct {
	maxPending int
	policy     flow.EvictPolicy
	fallback   corpus.Class
	tolerate   bool
	cdbCap     int
	chaosError float64
	chaosPanic float64
	chaosSeed  int64
	checkpoint string
	ckptEvery  int
	resume     string
	pace       time.Duration
}

// resumeEngine restores engine state from a checkpoint file written by a
// previous run's -checkpoint flag.
func resumeEngine(engine *flow.Engine, path string) error {
	payload, err := persist.LoadFile(path, persist.KindCheckpoint)
	if err != nil {
		return err
	}
	return engine.ImportCheckpoint(payload)
}

// parseClass maps a flag value to its class.
func parseClass(s string) (corpus.Class, error) {
	for c, name := range corpus.ClassNames() {
		if s == name {
			return corpus.Class(c), nil
		}
	}
	return 0, fmt.Errorf("unknown class %q (want text|binary|encrypted)", s)
}

// replayTrace generates a synthetic gateway trace and pushes it through the
// online engine, reporting throughput and ground-truth accuracy.
func replayTrace(clf *iustitia.Classifier, buffer int, eng engineSetup, flows int, seed int64) error {
	cfg := packet.DefaultTraceConfig()
	cfg.Flows = flows
	cfg.Seed = seed
	tr, err := packet.Generate(cfg, corpus.NewGenerator(seed))
	if err != nil {
		return err
	}
	return replay(clf, buffer, eng, tr)
}

// replay pushes a trace through the online engine, reporting throughput,
// ground-truth accuracy, and the overload/failure counters.
func replay(clf *iustitia.Classifier, buffer int, eng engineSetup, tr *packet.Trace) error {
	var classifier flow.Classifier = clf
	var chaos *flow.ChaosClassifier
	if eng.chaosError > 0 || eng.chaosPanic > 0 {
		chaos = flow.NewChaosClassifier(clf, flow.ChaosConfig{
			Seed:      eng.chaosSeed,
			ErrorRate: eng.chaosError,
			PanicRate: eng.chaosPanic,
		})
		classifier = chaos
	}
	cfg := flow.EngineConfig{
		BufferSize:    buffer,
		Classifier:    classifier,
		IdleFlush:     2 * time.Second,
		MaxPending:    eng.maxPending,
		Eviction:      eng.policy,
		FallbackClass: eng.fallback,
		Faults:        flow.FaultPolicy{Tolerate: eng.tolerate},
		CDB: flow.CDBConfig{
			PurgeOnClose:  true,
			PurgeInactive: true,
			N:             4,
			MaxRecords:    eng.cdbCap,
		},
	}
	if eng.checkpoint != "" {
		cfg.CheckpointEvery = eng.ckptEvery
		cfg.OnCheckpoint = func(snapshot []byte) {
			if err := persist.SaveFile(eng.checkpoint, persist.KindCheckpoint, snapshot); err != nil {
				fmt.Fprintln(os.Stderr, "iustitia-classify: checkpoint:", err)
			}
		}
	}
	engine, err := flow.NewEngine(cfg)
	if err != nil {
		return err
	}

	// Resume from a prior checkpoint when asked. Any unusable checkpoint
	// — missing, truncated, bit-flipped, wrong version, wrong kind — is a
	// logged warning and a cold start, never a crash or a wrong restore.
	if eng.resume != "" {
		if err := resumeEngine(engine, eng.resume); err != nil {
			fmt.Fprintf(os.Stderr,
				"iustitia-classify: warning: cannot resume from %s (%v); cold start\n",
				eng.resume, err)
		} else {
			s := engine.Stats()
			fmt.Printf("resumed from %s: %d classified flows, %d CDB records\n",
				eng.resume, s.Classified, s.CDB.Size)
		}
	}

	// A final checkpoint is flushed on SIGINT/SIGTERM — process death
	// must not throw away the classification state — and at the end of a
	// normal replay.
	var sigCh chan os.Signal
	if eng.checkpoint != "" {
		sigCh = make(chan os.Signal, 1)
		signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
		defer signal.Stop(sigCh)
	}
	finalCheckpoint := func(now time.Duration) error {
		if eng.checkpoint == "" {
			return nil
		}
		if _, err := engine.FlushIdle(now); err != nil && !eng.tolerate {
			fmt.Fprintln(os.Stderr, "iustitia-classify: flush before checkpoint:", err)
		}
		return persist.SaveFile(eng.checkpoint, persist.KindCheckpoint, engine.ExportCheckpoint())
	}

	start := time.Now()
	var lastTime time.Duration
	for i := range tr.Packets {
		p := &tr.Packets[i]
		select {
		case sig := <-sigCh:
			// A second signal while the final checkpoint is being flushed
			// means the operator wants out now: exit immediately and say
			// what was skipped.
			go func() {
				sig2 := <-sigCh
				fmt.Fprintf(os.Stderr, "iustitia-classify: second %v: forcing immediate exit; final checkpoint skipped\n", sig2)
				os.Exit(130)
			}()
			if err := finalCheckpoint(lastTime); err != nil {
				return fmt.Errorf("final checkpoint on %v: %w", sig, err)
			}
			s := engine.Stats()
			fmt.Printf("interrupted by %v after %d/%d packets: checkpoint saved to %s (%d classified flows, %d CDB records)\n",
				sig, i, len(tr.Packets), eng.checkpoint, s.Classified, s.CDB.Size)
			return nil
		default:
		}
		if _, err := engine.Process(p); err != nil {
			return fmt.Errorf("packet %d: %w (use -tolerate to degrade instead of aborting)", i, err)
		}
		lastTime = p.Time
		if eng.pace > 0 {
			time.Sleep(eng.pace)
		}
	}
	if _, err := engine.FlushAll(lastTime + time.Minute); err != nil {
		return fmt.Errorf("%w (use -tolerate to degrade instead of aborting)", err)
	}
	elapsed := time.Since(start)
	if eng.checkpoint != "" {
		if err := finalCheckpoint(lastTime + time.Minute); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		fmt.Printf("checkpoint saved to %s\n", eng.checkpoint)
	}

	correct, labeled := 0, 0
	for tuple, info := range tr.Flows {
		got, ok := engine.Label(tuple)
		if !ok {
			continue
		}
		labeled++
		if got == info.Class {
			correct++
		}
	}
	stats := engine.Stats()
	fmt.Printf("replayed %d packets / %d flows in %s (%.0f pkt/s)\n",
		len(tr.Packets), len(tr.Flows), elapsed.Round(time.Millisecond),
		float64(len(tr.Packets))/elapsed.Seconds())
	fmt.Printf("labeled %d flows, ground-truth accuracy %.1f%%\n",
		labeled, 100*float64(correct)/float64(max(1, labeled)))
	fmt.Printf("queues: text=%d binary=%d encrypted=%d; CDB size %d\n",
		stats.QueueCounts[corpus.Text], stats.QueueCounts[corpus.Binary],
		stats.QueueCounts[corpus.Encrypted], stats.CDB.Size)
	if eng.maxPending > 0 || eng.tolerate || eng.cdbCap > 0 || chaos != nil {
		degraded := ""
		if stats.Degraded > 0 {
			degraded = " [DEGRADED]"
		}
		fmt.Printf("governor: cap=%d policy=%s shed=%d evicted=%d failed=%d fallback=%d cdb-pressure-evictions=%d%s\n",
			eng.maxPending, eng.policy, stats.Shed, stats.Evicted, stats.Failed,
			stats.Fallback, stats.CDB.RemovedByPressure, degraded)
	}
	if chaos != nil {
		cs := chaos.Stats()
		fmt.Printf("chaos: %d calls, %d injected errors, %d injected panics (seed %d)\n",
			cs.Calls, cs.InjectedErrors, cs.InjectedPanics, eng.chaosSeed)
	}
	return nil
}

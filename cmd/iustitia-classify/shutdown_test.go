package main

// Graceful-shutdown integration test: SIGTERM mid-trace must flush a
// valid final checkpoint, and -resume must continue from it without
// re-classifying flows already retired to the CDB.

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"iustitia"
	"iustitia/internal/corpus"
	"iustitia/internal/flow"
	"iustitia/internal/persist"
)

// buildBinary compiles iustitia-classify into dir.
func buildBinary(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "iustitia-classify")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// trainModelSnapshot trains a small classifier on the synthetic corpus
// and saves it as a binary snapshot.
func trainModelSnapshot(t *testing.T, dir string) string {
	t.Helper()
	files, err := iustitia.SyntheticCorpus(1, 30, 2048, 4096)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := iustitia.Train(files)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "model.snap")
	if err := clf.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// checkpointStats loads a checkpoint file into a fresh engine and
// returns its restored stats, failing the test if the file is invalid.
func checkpointStats(t *testing.T, path string) flow.EngineStats {
	t.Helper()
	payload, err := persist.LoadFile(path, persist.KindCheckpoint)
	if err != nil {
		t.Fatalf("checkpoint %s unreadable: %v", path, err)
	}
	engine, err := flow.NewEngine(flow.EngineConfig{
		BufferSize: 32,
		Classifier: flow.ClassifierFunc(func([]byte) (corpus.Class, error) {
			return corpus.Text, nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.ImportCheckpoint(payload); err != nil {
		t.Fatalf("checkpoint %s does not restore: %v", path, err)
	}
	return engine.Stats()
}

func TestShutdownCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the binary")
	}
	dir := t.TempDir()
	bin := buildBinary(t, dir)
	model := trainModelSnapshot(t, dir)
	ckpt := filepath.Join(dir, "state.ckpt")

	// Run 1: replay paced slowly enough to interrupt, checkpointing often.
	run1 := exec.Command(bin,
		"-load-model", model, "-trace", "-flows", "400", "-seed", "7",
		"-pace", "2ms", "-checkpoint", ckpt, "-checkpoint-every", "25")
	var out1 bytes.Buffer
	run1.Stdout, run1.Stderr = &out1, &out1
	if err := run1.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for the first periodic checkpoint to land, then SIGTERM.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := persist.LoadFile(ckpt, persist.KindCheckpoint); err == nil {
			break
		}
		if time.Now().After(deadline) {
			_ = run1.Process.Kill()
			t.Fatalf("no checkpoint appeared; output so far:\n%s", out1.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := run1.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := run1.Wait(); err != nil {
		t.Fatalf("interrupted run exited with %v\n%s", err, out1.String())
	}
	if !strings.Contains(out1.String(), "interrupted by terminated") {
		t.Fatalf("run 1 did not report the signal:\n%s", out1.String())
	}

	// The final checkpoint is valid and carries real progress.
	interrupted := checkpointStats(t, ckpt)
	if interrupted.Classified == 0 || interrupted.CDB.Size == 0 {
		t.Fatalf("final checkpoint is empty: %+v", interrupted)
	}

	// Reference: the same trace replayed cold to completion.
	coldCkpt := filepath.Join(dir, "cold.ckpt")
	cold := exec.Command(bin,
		"-load-model", model, "-trace", "-flows", "400", "-seed", "7",
		"-checkpoint", coldCkpt)
	if out, err := cold.CombinedOutput(); err != nil {
		t.Fatalf("cold run: %v\n%s", err, out)
	}
	coldStats := checkpointStats(t, coldCkpt)

	// Run 2: resume from the interrupt checkpoint and finish the trace.
	resumedCkpt := filepath.Join(dir, "resumed.ckpt")
	run2 := exec.Command(bin,
		"-load-model", model, "-trace", "-flows", "400", "-seed", "7",
		"-checkpoint", resumedCkpt, "-resume", ckpt)
	out2, err := run2.CombinedOutput()
	if err != nil {
		t.Fatalf("resumed run: %v\n%s", err, out2)
	}
	wantResume := fmt.Sprintf("resumed from %s: %d classified flows, %d CDB records",
		ckpt, interrupted.Classified, interrupted.CDB.Size)
	if !strings.Contains(string(out2), wantResume) {
		t.Fatalf("run 2 output missing %q:\n%s", wantResume, out2)
	}

	// Counts continue from the snapshot...
	final := checkpointStats(t, resumedCkpt)
	if final.Classified < interrupted.Classified {
		t.Errorf("resumed run finished with %d classified, below the restored %d",
			final.Classified, interrupted.Classified)
	}
	// ...and flows already retired to the CDB are answered from it, not
	// re-classified: the resumed total stays strictly below restored +
	// cold (re-classifying everything would reach at least that sum).
	if final.Classified >= interrupted.Classified+coldStats.Classified {
		t.Errorf("resumed run classified %d flows (restored %d + cold %d): retired flows were re-classified",
			final.Classified, interrupted.Classified, coldStats.Classified)
	}
}

// TestResumeFallsBackToColdStart: a missing or corrupt -resume file must
// warn and cold-start, never crash.
func TestResumeFallsBackToColdStart(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the binary")
	}
	dir := t.TempDir()
	bin := buildBinary(t, dir)
	model := trainModelSnapshot(t, dir)

	for name, setup := range map[string]func(t *testing.T) string{
		"missing": func(t *testing.T) string {
			return filepath.Join(dir, "nonexistent.ckpt")
		},
		"corrupt": func(t *testing.T) string {
			path := filepath.Join(dir, "corrupt.ckpt")
			if err := persist.SaveFile(path, persist.KindCheckpoint, []byte("x")); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)-1] ^= 0xFF
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			return path
		},
	} {
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command(bin,
				"-load-model", model, "-trace", "-flows", "50", "-seed", "3",
				"-resume", setup(t))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("run failed instead of cold-starting: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), "cold start") {
				t.Errorf("no cold-start warning in output:\n%s", out)
			}
			if !strings.Contains(string(out), "replayed") {
				t.Errorf("replay did not complete:\n%s", out)
			}
		})
	}
}

// Command iustitia-trace generates a synthetic gateway packet trace and
// prints its shape statistics (the Figure 9 CDFs plus flow composition) so
// the substrate can be inspected and tuned independently of classification.
//
// Usage:
//
//	iustitia-trace -flows 5000 -seed 7
//
// The -chaos-* flags deterministically perturb the trace (packet drops,
// duplicates, reorders) before it is written, producing adversarial
// workloads for overload and fault-tolerance testing:
//
//	iustitia-trace -flows 5000 -chaos-drop 0.02 -chaos-reorder 0.1 -out stress.trace
//
// With -connect (TCP) or -connect-unix the trace is streamed as framed
// packets to a running iustitia-serve daemon, reconnecting and resending
// on transport failures:
//
//	iustitia-trace -flows 2000 -connect 127.0.0.1:9301 -pace 100us
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/flow"
	"iustitia/internal/ingest"
	"iustitia/internal/packet"
	"iustitia/internal/pcap"
	"iustitia/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iustitia-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		flows    = flag.Int("flows", 2000, "number of data flows")
		seed     = flag.Int64("seed", 1, "generation seed")
		duration = flag.Duration("duration", 80*time.Second, "virtual capture duration")
		udp      = flag.Float64("udp", 0.2, "UDP flow fraction")
		headers  = flag.Float64("http-headers", 0.3, "fraction of flows with an HTTP header")
		out      = flag.String("out", "", "write the trace to this file (replayable with iustitia-classify -replay)")
		in       = flag.String("in", "", "read a previously written trace instead of generating one")
		pcapOut  = flag.String("pcap", "", "also export the trace as a libpcap capture (tcpdump/Wireshark readable)")

		chaosDrop    = flag.Float64("chaos-drop", 0, "drop this fraction of packets (overload/loss stress)")
		chaosDup     = flag.Float64("chaos-dup", 0, "duplicate this fraction of packets")
		chaosReorder = flag.Float64("chaos-reorder", 0, "displace this fraction of packets out of timestamp order")
		chaosSeed    = flag.Int64("chaos-seed", 1, "fault-injection seed")

		connect     = flag.String("connect", "", "stream the trace as framed packets to this iustitia-serve TCP address")
		connectUnix = flag.String("connect-unix", "", "stream the trace to this iustitia-serve unix socket")
		pace        = flag.Duration("pace", 0, "sleep between streamed packets (0 = as fast as possible)")
		retryMax    = flag.Int("retry-max", 8, "reconnect attempts per packet before giving up")
		retryWait   = flag.Duration("retry-backoff", 10*time.Millisecond, "base reconnect backoff (doubles per retry)")
	)
	flag.Parse()

	var (
		trace *packet.Trace
		err   error
	)
	start := time.Now()
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		trace, err = packet.ReadTrace(f)
		if err != nil {
			return err
		}
		fmt.Printf("loaded trace from %s\n", *in)
	} else {
		cfg := packet.DefaultTraceConfig()
		cfg.Flows = *flows
		cfg.Seed = *seed
		cfg.Duration = *duration
		cfg.UDPFraction = *udp
		cfg.HTTPHeaderFraction = *headers
		trace, err = packet.Generate(cfg, corpus.NewGenerator(*seed))
		if err != nil {
			return err
		}
	}
	if *chaosDrop > 0 || *chaosDup > 0 || *chaosReorder > 0 {
		perturbed, cs := flow.ChaosTrace(trace.Packets, flow.TraceChaosConfig{
			Seed:        *chaosSeed,
			DropRate:    *chaosDrop,
			DupRate:     *chaosDup,
			ReorderRate: *chaosReorder,
		})
		trace.Packets = perturbed
		fmt.Printf("chaos: dropped %d, duplicated %d, reordered %d packets (seed %d)\n",
			cs.Dropped, cs.Duplicated, cs.Reordered, *chaosSeed)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		n, err := trace.WriteTo(f)
		if err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%.1f MB)\n", *out, float64(n)/(1<<20))
	}
	if *pcapOut != "" {
		f, err := os.Create(*pcapOut)
		if err != nil {
			return err
		}
		if err := pcap.WriteTrace(f, trace); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("pcap capture written to %s\n", *pcapOut)
	}
	if *connect != "" || *connectUnix != "" {
		if err := streamTrace(trace, *connect, *connectUnix, *pace, *retryMax, *retryWait); err != nil {
			return err
		}
	}
	fmt.Printf("generated %d packets (%d data) across %d flows in %s\n",
		len(trace.Packets), trace.DataPackets(), len(trace.Flows),
		time.Since(start).Round(time.Millisecond))

	var (
		byClass   = map[corpus.Class]int{}
		byClose   = map[string]int{}
		headered  int
		sizes     []float64
		totalByte int
	)
	for _, info := range trace.Flows {
		byClass[info.Class]++
		switch {
		case info.ClosedBy.Has(packet.FlagFIN):
			byClose["fin"]++
		case info.ClosedBy.Has(packet.FlagRST):
			byClose["rst"]++
		default:
			byClose["open"]++
		}
		if info.HasHeader {
			headered++
		}
		totalByte += info.Bytes
	}
	for i := range trace.Packets {
		if trace.Packets[i].IsData() {
			sizes = append(sizes, float64(len(trace.Packets[i].Payload)))
		}
	}
	fmt.Printf("flow classes: text=%d binary=%d encrypted=%d\n",
		byClass[corpus.Text], byClass[corpus.Binary], byClass[corpus.Encrypted])
	fmt.Printf("termination: fin=%d rst=%d silent=%d; %d flows carry HTTP headers\n",
		byClose["fin"], byClose["rst"], byClose["open"], headered)
	fmt.Printf("total payload: %.1f MB\n", float64(totalByte)/(1<<20))

	cdf, err := stats.NewCDF(sizes)
	if err != nil {
		return err
	}
	fmt.Println("payload size CDF:")
	for _, x := range []float64{64, 140, 512, 1024, 1480} {
		fmt.Printf("  P(size <= %4.0f) = %.2f\n", x, cdf.At(x))
	}
	return nil
}

// streamTrace replays the trace's packets into a running ingest daemon
// through the reconnecting frame client: transient transport failures
// (resets, daemon restarts within the retry budget) cost a resend, not
// the replay.
func streamTrace(trace *packet.Trace, tcpAddr, unixPath string, pace time.Duration, retryMax int, backoff time.Duration) error {
	if tcpAddr != "" && unixPath != "" {
		return fmt.Errorf("pass -connect or -connect-unix, not both")
	}
	network, addr := "tcp", tcpAddr
	if unixPath != "" {
		network, addr = "unix", unixPath
	}
	client, err := ingest.NewClient(ingest.ClientConfig{
		Dial:        func() (net.Conn, error) { return net.Dial(network, addr) },
		MaxRetries:  retryMax,
		BackoffBase: backoff,
	})
	if err != nil {
		return err
	}
	defer client.Close()
	start := time.Now()
	for i := range trace.Packets {
		if err := client.Send(&trace.Packets[i]); err != nil {
			return fmt.Errorf("streaming packet %d/%d to %s: %w", i+1, len(trace.Packets), addr, err)
		}
		if pace > 0 {
			time.Sleep(pace)
		}
	}
	cs := client.Stats()
	fmt.Printf("streamed %d packets to %s in %s (resent %d, reconnects %d, dial failures %d)\n",
		len(trace.Packets), addr, time.Since(start).Round(time.Millisecond),
		cs.Resent, cs.Reconnects, cs.DialFailures)
	return nil
}

// Command iustitia-train trains an Iustitia flow-nature classifier on the
// synthetic corpus and writes it to a JSON model file.
//
// Usage:
//
//	iustitia-train -model svm -b 32 -per-class 200 -out model.json
package main

import (
	"flag"
	"fmt"
	"os"

	"iustitia"
	"iustitia/internal/ml/dataset"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iustitia-train:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelName = flag.String("model", "svm", "model family: cart or svm")
		buffer    = flag.Int("b", 32, "buffer size the classifier is trained for (bytes)")
		perClass  = flag.Int("per-class", 200, "training files per class")
		minSize   = flag.Int("min-size", 1<<10, "minimum corpus file size")
		maxSize   = flag.Int("max-size", 16<<10, "maximum corpus file size")
		seed      = flag.Int64("seed", 1, "corpus and training seed")
		gamma     = flag.Float64("gamma", 50, "RBF kernel gamma (svm only)")
		cPenalty  = flag.Float64("C", 1000, "soft margin penalty (svm only)")
		wholeFile = flag.Bool("whole-file", false, "train on whole files (H_F) instead of first-b bytes (H_b)")
		offsetT   = flag.Int("random-offset", 0, "if > 0, train on b bytes at a random offset up to this threshold (H_b')")
		out       = flag.String("out", "model.json", "output model path")
		features  = flag.String("features-out", "", "also dump the training entropy vectors as CSV")
	)
	flag.Parse()

	var model iustitia.Model
	switch *modelName {
	case "cart":
		model = iustitia.ModelCART
	case "svm":
		model = iustitia.ModelSVM
	default:
		return fmt.Errorf("unknown model %q (want cart or svm)", *modelName)
	}

	fmt.Printf("synthesizing corpus: %d files/class, %d-%d bytes (seed %d)\n",
		*perClass, *minSize, *maxSize, *seed)
	files, err := iustitia.SyntheticCorpus(*seed, *perClass, *minSize, *maxSize)
	if err != nil {
		return err
	}

	opts := []iustitia.Option{
		iustitia.WithModel(model),
		iustitia.WithBufferSize(*buffer),
		iustitia.WithSVMParams(*gamma, *cPenalty),
		iustitia.WithSeed(*seed),
	}
	switch {
	case *wholeFile:
		opts = append(opts, iustitia.WithWholeFileTraining())
	case *offsetT > 0:
		opts = append(opts, iustitia.WithRandomOffsetTraining(*offsetT))
	}

	fmt.Printf("training %s classifier (b=%d)...\n", *modelName, *buffer)
	clf, err := iustitia.Train(files, opts...)
	if err != nil {
		return err
	}

	if *features != "" {
		if err := dumpFeatures(clf, files, *buffer, *features); err != nil {
			return err
		}
		fmt.Printf("training features written to %s\n", *features)
	}

	// Quick held-out check on a fresh pool.
	holdout, err := iustitia.SyntheticCorpus(*seed+1000, 60, *minSize, *maxSize)
	if err != nil {
		return err
	}
	correct := 0
	for _, f := range holdout {
		window := f.Data
		if len(window) > *buffer {
			window = window[:*buffer]
		}
		got, err := clf.Classify(window)
		if err != nil {
			return err
		}
		if got == f.Class {
			correct++
		}
	}
	fmt.Printf("held-out accuracy: %.1f%% (%d/%d)\n",
		100*float64(correct)/float64(len(holdout)), correct, len(holdout))

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := clf.Save(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("model written to %s\n", *out)
	return nil
}

// dumpFeatures featurizes the training files with the trained classifier's
// widths and writes them as CSV for external analysis.
func dumpFeatures(clf *iustitia.Classifier, files []iustitia.TrainingFile, buffer int, path string) error {
	widths := clf.FeatureWidths()
	names := make([]string, len(widths))
	for i, k := range widths {
		names[i] = fmt.Sprintf("h%d", k)
	}
	var samples []dataset.Sample
	for _, f := range files {
		window := f.Data
		if len(window) > buffer {
			window = window[:buffer]
		}
		vec, err := clf.Features(window)
		if err != nil {
			continue // files shorter than the widest feature are skipped
		}
		samples = append(samples, dataset.Sample{Features: vec, Label: int(f.Class)})
	}
	ds, err := dataset.New(samples, 3)
	if err != nil {
		return err
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ds.WriteCSV(out, names); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// Command iustitia-benchjson measures the entropy hot path and the
// flow-engine throughput and appends the results as machine-readable JSON
// (BENCH_entropy.json by default). The file is the perf trajectory tracked
// across PRs — each invocation appends one run instead of overwriting, so
// the document accumulates before/after evidence: vector-extraction
// ns/op, B/op, and allocs/op over the paper's payload scales (256 B,
// 1 KiB, 4 KiB), the legacy string-keyed baseline for comparison, and the
// engine scaling curve (shards 1/2/4/8, per-packet vs batched vs
// pipelined submission) through the sharded flow.ParallelEngine.
//
// Usage:
//
//	iustitia-benchjson -out BENCH_entropy.json [-procs N]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"iustitia/internal/core"
	"iustitia/internal/corpus"
	"iustitia/internal/entropy"
	"iustitia/internal/flow"
	"iustitia/internal/packet"
)

// engineBatchSize is the ProcessBatch chunk used by the batched and
// pipelined engine benchmarks — the ingest server's default batch bound.
const engineBatchSize = 64

// benchResult is one benchmark entry of a run.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	FlowsPerSec float64 `json:"flows_per_sec,omitempty"`
	// MaxNsPerOp and P99NsPerOp are per-operation latency tails, recorded
	// by series whose point is the tail (the CDB purge path), not the mean.
	MaxNsPerOp float64 `json:"max_ns_per_op,omitempty"`
	P99NsPerOp float64 `json:"p99_ns_per_op,omitempty"`
	// Procs is the GOMAXPROCS the entry actually ran under.
	Procs int `json:"procs,omitempty"`
}

// benchRun is one invocation's worth of measurements.
type benchRun struct {
	Timestamp            string             `json:"timestamp,omitempty"`
	GoVersion            string             `json:"go_version"`
	NumCPU               int                `json:"num_cpu,omitempty"`
	GOMAXPROCS           int                `json:"gomaxprocs"`
	Note                 string             `json:"note,omitempty"`
	AllocImprovement1KiB float64            `json:"alloc_improvement_1kib,omitempty"`
	Speedups             map[string]float64 `json:"speedups,omitempty"`
	// Stream holds the constant-memory mode's footprint and accuracy
	// measurements (see stream.go); absent in runs that predate it.
	Stream  *streamReport `json:"stream,omitempty"`
	Results []benchResult `json:"results"`
}

// benchFile is the append-only output document (schema v2).
type benchFile struct {
	Schema string     `json:"schema"`
	Runs   []benchRun `json:"runs"`
}

// legacyFile is the v1 single-run document, migrated on first append.
type legacyFile struct {
	Schema               string        `json:"schema"`
	GoVersion            string        `json:"go_version"`
	GOMAXPROCS           int           `json:"gomaxprocs"`
	AllocImprovement1KiB float64       `json:"alloc_improvement_1kib"`
	Results              []benchResult `json:"results"`
}

// loadTrajectory reads the existing output file, migrating a v1 document
// into the first run of a v2 trajectory. A missing file starts fresh.
func loadTrajectory(path string) (benchFile, error) {
	doc := benchFile{Schema: "iustitia-bench-v2"}
	blob, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return doc, nil
	}
	if err != nil {
		return doc, err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(blob, &probe); err != nil {
		return doc, fmt.Errorf("parse %s: %w", path, err)
	}
	switch probe.Schema {
	case "iustitia-bench-v2":
		if err := json.Unmarshal(blob, &doc); err != nil {
			return doc, fmt.Errorf("parse %s: %w", path, err)
		}
	case "iustitia-bench-v1":
		var v1 legacyFile
		if err := json.Unmarshal(blob, &v1); err != nil {
			return doc, fmt.Errorf("parse %s: %w", path, err)
		}
		doc.Runs = append(doc.Runs, benchRun{
			GoVersion:            v1.GoVersion,
			GOMAXPROCS:           v1.GOMAXPROCS,
			Note:                 "migrated from iustitia-bench-v1",
			AllocImprovement1KiB: v1.AllocImprovement1KiB,
			Results:              v1.Results,
		})
	default:
		return doc, fmt.Errorf("%s: unknown schema %q", path, probe.Schema)
	}
	return doc, nil
}

// deterministicPayload fills a payload with the corpus generator's
// encrypted-class bytes so runs are comparable across machines and PRs.
func deterministicPayload(size int) ([]byte, error) {
	f, err := corpus.NewGenerator(1).File(corpus.Encrypted, size)
	if err != nil {
		return nil, err
	}
	if len(f.Data) < size {
		return nil, fmt.Errorf("generator returned %d bytes, want %d", len(f.Data), size)
	}
	return f.Data[:size], nil
}

// vectorEntry benchmarks one extraction path over one payload size.
func vectorEntry(name string, data []byte, legacy bool) benchResult {
	widths := core.AllWidths
	r := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			var err error
			if legacy {
				_, err = entropy.LegacyVectorAt(data, widths)
			} else {
				_, err = entropy.VectorAt(data, widths)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	return benchResult{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		MBPerSec:    float64(len(data)) * 1e3 / float64(r.NsPerOp()),
		Procs:       runtime.GOMAXPROCS(0),
	}
}

// engineMode selects how a benchmark replay submits packets.
type engineMode int

const (
	modeSingle    engineMode = iota // per-packet Process
	modeBatch                       // synchronous ProcessBatch
	modePipelined                   // ProcessBatch into shard workers
)

func (m engineMode) String() string {
	switch m {
	case modeSingle:
		return "single"
	case modeBatch:
		return "batch"
	default:
		return "pipelined"
	}
}

// benchEnv is the trained classifier and trace shared by every engine
// benchmark, so classifier training happens once.
type benchEnv struct {
	clf flow.Classifier
	// base is the trained core model behind clf, needed to build
	// per-shard replica sets for the replica-vs-shared comparison.
	base  *core.Classifier
	trace *packet.Trace
}

func newBenchEnv() (*benchEnv, error) {
	gen := corpus.NewGenerator(9)
	files, err := gen.Pool(30, 1<<10, 4<<10)
	if err != nil {
		return nil, err
	}
	clf, err := core.Train(files, core.TrainConfig{
		Kind: core.KindCART,
		Dataset: core.DatasetConfig{
			Widths: core.PhiPrimeCART, Method: core.MethodPrefix, BufferSize: 32,
		},
	})
	if err != nil {
		return nil, err
	}
	trace, err := packet.Generate(packet.TraceConfig{
		Flows: 2000, Duration: 60 * time.Second, UDPFraction: 0.2,
		CleanCloseFraction: 0.4, RSTFraction: 0.1,
		MinFlowBytes: 256, MaxFlowBytes: 4 << 10,
		MeanPacketGap: 50 * time.Millisecond, Seed: 9,
	}, corpus.NewGenerator(9))
	if err != nil {
		return nil, err
	}
	// vectorClf exposes the model's widths so the same environment drives
	// both the buffered engine and stream mode (which needs a
	// flow.VectorClassifier).
	return &benchEnv{clf: vectorClf{clf}, base: clf, trace: trace}, nil
}

// replay pumps the trace through a fresh engine in the given mode and
// returns the wall time. The §6 conservation law is asserted after the
// final flush: a batched path that loses or duplicates a packet is a
// wrong answer, not a fast one.
func (env *benchEnv) replay(shards int, mode engineMode, stream *flow.StreamConfig, replicate bool) (time.Duration, error) {
	// replicate hands every shard its own classifier replica of the same
	// model (core.ReplicaSet) instead of one shared classifier — the
	// replica-vs-shared series isolates the cost of sharing the hot
	// atomic model-pointer word across shards.
	var classifiers []flow.Classifier
	if replicate {
		rs, err := core.NewReplicaSet(env.base, shards)
		if err != nil {
			return 0, err
		}
		classifiers = make([]flow.Classifier, shards)
		for i := range classifiers {
			classifiers[i] = vectorClf{rs.Replica(i)}
		}
	}
	pe, err := flow.NewParallelEngine(flow.EngineConfig{
		BufferSize: 32, Classifier: env.clf,
		CDB: flow.CDBConfig{PurgeOnClose: true}, Stream: stream,
	}, shards, classifiers)
	if err != nil {
		return 0, err
	}
	pkts := env.trace.Packets
	start := time.Now()
	switch mode {
	case modeSingle:
		for i := range pkts {
			if _, err := pe.Process(&pkts[i]); err != nil {
				return 0, err
			}
		}
	default:
		if mode == modePipelined {
			if err := pe.StartPipeline(0); err != nil {
				return 0, err
			}
		}
		batch := make([]*packet.Packet, 0, engineBatchSize)
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			failed, err := pe.ProcessBatch(batch)
			if err != nil || failed != 0 {
				return fmt.Errorf("ProcessBatch: failed=%d err=%w", failed, err)
			}
			batch = batch[:0]
			return nil
		}
		for i := range pkts {
			batch = append(batch, &pkts[i])
			if len(batch) == engineBatchSize {
				if err := flush(); err != nil {
					return 0, err
				}
			}
		}
		if err := flush(); err != nil {
			return 0, err
		}
		if mode == modePipelined {
			pe.Barrier()
		}
	}
	if _, err := pe.FlushAll(pkts[len(pkts)-1].Time + time.Hour); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if mode == modePipelined {
		ps := pe.PipelineStats()
		if err := pe.StopPipeline(); err != nil {
			return 0, err
		}
		if ps.Errors != 0 {
			return 0, fmt.Errorf("pipelined replay: %d errors, first: %v", ps.Errors, ps.FirstErr)
		}
	}
	st := pe.Stats()
	if total := st.Classified + st.Fallback + st.Dropped + st.Pending; st.Admitted != total {
		return 0, fmt.Errorf("conservation violated (shards=%d mode=%s): Admitted %d != %d",
			shards, mode, st.Admitted, total)
	}
	return elapsed, nil
}

// engineEntry reports end-to-end flows/sec for one (shards, mode) point of
// the scaling curve (best of three fresh runs).
func (env *benchEnv) engineEntry(name string, shards int, mode engineMode, stream *flow.StreamConfig, replicate bool) (benchResult, error) {
	nFlows := len(env.trace.Flows)
	nPackets := len(env.trace.Packets)
	best := benchResult{
		Name:  name,
		Procs: runtime.GOMAXPROCS(0),
	}
	for rep := 0; rep < 3; rep++ {
		elapsed, err := env.replay(shards, mode, stream, replicate)
		if err != nil {
			return benchResult{}, err
		}
		fps := float64(nFlows) / elapsed.Seconds()
		if fps > best.FlowsPerSec {
			best.FlowsPerSec = fps
			best.NsPerOp = float64(elapsed.Nanoseconds()) / float64(nPackets)
		}
	}
	return best, nil
}

func run(out string, procs int, sweep []int, assertScaling float64) error {
	runtime.GOMAXPROCS(procs)
	doc, err := loadTrajectory(out)
	if err != nil {
		return err
	}
	cur := benchRun{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Speedups:   map[string]float64{},
	}

	sizes := []struct {
		label string
		bytes int
	}{{"256B", 256}, {"1KiB", 1 << 10}, {"4KiB", 4 << 10}}
	var fast1k, legacy1k benchResult
	for _, s := range sizes {
		data, err := deterministicPayload(s.bytes)
		if err != nil {
			return err
		}
		fast := vectorEntry("entropy.VectorAt/"+s.label+"/w1-10/packed", data, false)
		cur.Results = append(cur.Results, fast)
		fmt.Fprintf(os.Stderr, "%-56s %12.0f ns/op %8d B/op %6d allocs/op\n",
			fast.Name, fast.NsPerOp, fast.BytesPerOp, fast.AllocsPerOp)
		legacy := vectorEntry("entropy.VectorAt/"+s.label+"/w1-10/legacy", data, true)
		cur.Results = append(cur.Results, legacy)
		fmt.Fprintf(os.Stderr, "%-56s %12.0f ns/op %8d B/op %6d allocs/op\n",
			legacy.Name, legacy.NsPerOp, legacy.BytesPerOp, legacy.AllocsPerOp)
		if s.bytes == 1<<10 {
			fast1k, legacy1k = fast, legacy
		}
	}
	if fast1k.AllocsPerOp > 0 {
		cur.AllocImprovement1KiB = float64(legacy1k.AllocsPerOp) / float64(fast1k.AllocsPerOp)
	}
	if fast1k.NsPerOp > 0 {
		cur.Speedups["vector_1kib_legacy_over_packed"] = legacy1k.NsPerOp / fast1k.NsPerOp
	}

	env, err := newBenchEnv()
	if err != nil {
		return err
	}
	fps := map[string]float64{}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, mode := range []engineMode{modeSingle, modeBatch, modePipelined} {
			name := fmt.Sprintf("flow.ParallelEngine/shards-%d/%s/trace-2000flows", shards, mode)
			entry, err := env.engineEntry(name, shards, mode, nil, false)
			if err != nil {
				return err
			}
			cur.Results = append(cur.Results, entry)
			fps[fmt.Sprintf("shards-%d/%s", shards, mode)] = entry.FlowsPerSec
			fmt.Fprintf(os.Stderr, "%-56s %12.0f ns/pkt %14.0f flows/sec\n",
				entry.Name, entry.NsPerOp, entry.FlowsPerSec)
		}
	}
	// The scaling and batching ratios the trajectory tracks: how much the
	// batched submission buys over per-packet at one shard, and how the
	// pipelined path scales with shard count.
	if base := fps["shards-1/single"]; base > 0 {
		cur.Speedups["engine_batch_over_single_shards1"] = fps["shards-1/batch"] / base
	}
	if base := fps["shards-1/pipelined"]; base > 0 {
		for _, shards := range []int{2, 4, 8} {
			key := fmt.Sprintf("engine_pipelined_shards%d_over_shards1", shards)
			cur.Speedups[key] = fps[fmt.Sprintf("shards-%d/pipelined", shards)] / base
		}
	}

	// Replica-vs-shared classifier: the same pipelined shards-4 replay,
	// the only variable being whether every shard shares one classifier
	// (one hot atomic model-pointer word) or owns a replica. On a single
	// core the ratio sits near 1.0; the gap is a multicore effect.
	repl, err := env.engineEntry(
		"flow.ParallelEngine/shards-4/pipelined/replica-classifiers/trace-2000flows",
		4, modePipelined, nil, true)
	if err != nil {
		return err
	}
	cur.Results = append(cur.Results, repl)
	fmt.Fprintf(os.Stderr, "%-56s %12.0f ns/pkt %14.0f flows/sec\n",
		repl.Name, repl.NsPerOp, repl.FlowsPerSec)
	if base := fps["shards-4/pipelined"]; base > 0 {
		cur.Speedups["classifier_replica_over_shared"] = repl.FlowsPerSec / base
	}

	if err := purgeTailSection(&cur); err != nil {
		return err
	}

	if err := streamSection(env, &cur, fps["shards-1/single"]); err != nil {
		return err
	}

	// The -procs-sweep curve: the pipelined shards {1,4} points re-run
	// under each requested GOMAXPROCS, so one run shows how the shard
	// speedup tracks the cores actually granted. Each entry's Procs field
	// records the setting it ran under.
	for _, p := range sweep {
		runtime.GOMAXPROCS(p)
		sweepFPS := map[int]float64{}
		for _, shards := range []int{1, 4} {
			name := fmt.Sprintf("flow.ParallelEngine/procs-%d/shards-%d/pipelined/trace-2000flows", p, shards)
			entry, err := env.engineEntry(name, shards, modePipelined, nil, false)
			if err != nil {
				return err
			}
			cur.Results = append(cur.Results, entry)
			sweepFPS[shards] = entry.FlowsPerSec
			fmt.Fprintf(os.Stderr, "%-56s %12.0f ns/pkt %14.0f flows/sec\n",
				entry.Name, entry.NsPerOp, entry.FlowsPerSec)
		}
		if base := sweepFPS[1]; base > 0 {
			cur.Speedups[fmt.Sprintf("engine_pipelined_shards4_over_shards1_procs%d", p)] = sweepFPS[4] / base
		}
	}
	runtime.GOMAXPROCS(procs)

	doc.Runs = append(doc.Runs, cur)
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "appended run %d to %s (alloc improvement at 1 KiB: %.0fx, GOMAXPROCS %d of %d CPUs)\n",
		len(doc.Runs), out, cur.AllocImprovement1KiB, cur.GOMAXPROCS, cur.NumCPU)

	// The multicore gate: on a box with enough cores, 4 pipelined shards
	// must actually scale. The run is appended before asserting, so a
	// failing gate still leaves its evidence in the trajectory. A 1-CPU
	// runner cannot exhibit parallel speedup — the assertion is skipped,
	// not faked.
	if assertScaling > 0 {
		key := "engine_pipelined_shards4_over_shards1"
		got := cur.Speedups[key]
		switch {
		case cur.NumCPU < 4:
			fmt.Fprintf(os.Stderr, "scaling assertion skipped: %d CPUs < 4 (%s = %.2f, unasserted)\n",
				cur.NumCPU, key, got)
		case got < assertScaling:
			return fmt.Errorf("scaling assertion failed: %s = %.2f < %.2f on %d CPUs",
				key, got, assertScaling, cur.NumCPU)
		default:
			fmt.Fprintf(os.Stderr, "scaling assertion passed: %s = %.2f >= %.2f\n", key, got, assertScaling)
		}
	}
	return nil
}

// parseProcsSweep parses the -procs-sweep comma list.
func parseProcsSweep(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("bad -procs-sweep entry %q", part)
		}
		out = append(out, p)
	}
	return out, nil
}

func main() {
	out := flag.String("out", "BENCH_entropy.json", "output JSON path (appended to, not overwritten)")
	procs := flag.Int("procs", runtime.NumCPU(), "GOMAXPROCS for the run (recorded per result)")
	procsSweep := flag.String("procs-sweep", "", "comma-separated GOMAXPROCS values to re-run the pipelined shards {1,4} points under (e.g. 1,2,4)")
	assertScaling := flag.Float64("assert-scaling", 0, "fail unless engine_pipelined_shards4_over_shards1 reaches this ratio (skipped below 4 CPUs; 0 disables)")
	flag.Parse()
	if *procs < 1 {
		fmt.Fprintln(os.Stderr, "iustitia-benchjson: -procs must be >= 1")
		os.Exit(1)
	}
	sweep, err := parseProcsSweep(*procsSweep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iustitia-benchjson:", err)
		os.Exit(1)
	}
	if err := run(*out, *procs, sweep, *assertScaling); err != nil {
		fmt.Fprintln(os.Stderr, "iustitia-benchjson:", err)
		os.Exit(1)
	}
}

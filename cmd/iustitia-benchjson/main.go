// Command iustitia-benchjson measures the entropy hot path and the
// flow-engine throughput and writes the results as machine-readable JSON
// (BENCH_entropy.json by default). The file is the perf trajectory tracked
// across PRs: vector-extraction ns/op, B/op, and allocs/op over the
// paper's payload scales (256 B, 1 KiB, 4 KiB), the legacy string-keyed
// baseline for comparison, and end-to-end flows/sec through the sharded
// flow.ParallelEngine.
//
// Usage:
//
//	iustitia-benchjson -out BENCH_entropy.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"iustitia/internal/core"
	"iustitia/internal/corpus"
	"iustitia/internal/entropy"
	"iustitia/internal/flow"
	"iustitia/internal/packet"
)

// benchResult is one benchmark entry of the output file.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	FlowsPerSec float64 `json:"flows_per_sec,omitempty"`
}

// benchFile is the full output document.
type benchFile struct {
	Generated            string        `json:"schema"`
	GoVersion            string        `json:"go_version"`
	GOMAXPROCS           int           `json:"gomaxprocs"`
	AllocImprovement1KiB float64       `json:"alloc_improvement_1kib"`
	Results              []benchResult `json:"results"`
}

// deterministicPayload fills a payload with the corpus generator's
// encrypted-class bytes so runs are comparable across machines and PRs.
func deterministicPayload(size int) ([]byte, error) {
	f, err := corpus.NewGenerator(1).File(corpus.Encrypted, size)
	if err != nil {
		return nil, err
	}
	if len(f.Data) < size {
		return nil, fmt.Errorf("generator returned %d bytes, want %d", len(f.Data), size)
	}
	return f.Data[:size], nil
}

// vectorEntry benchmarks one extraction path over one payload size.
func vectorEntry(name string, data []byte, legacy bool) benchResult {
	widths := core.AllWidths
	r := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			var err error
			if legacy {
				_, err = entropy.LegacyVectorAt(data, widths)
			} else {
				_, err = entropy.VectorAt(data, widths)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	return benchResult{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		MBPerSec:    float64(len(data)) * 1e3 / float64(r.NsPerOp()),
	}
}

// engineEntry pumps a synthetic trace through a sharded engine and reports
// per-packet cost plus end-to-end flows/sec (best of three fresh runs).
func engineEntry(shards int) (benchResult, error) {
	gen := corpus.NewGenerator(9)
	files, err := gen.Pool(30, 1<<10, 4<<10)
	if err != nil {
		return benchResult{}, err
	}
	clf, err := core.Train(files, core.TrainConfig{
		Kind: core.KindCART,
		Dataset: core.DatasetConfig{
			Widths: core.PhiPrimeCART, Method: core.MethodPrefix, BufferSize: 32,
		},
	})
	if err != nil {
		return benchResult{}, err
	}
	trace, err := packet.Generate(packet.TraceConfig{
		Flows: 2000, Duration: 60 * time.Second, UDPFraction: 0.2,
		CleanCloseFraction: 0.4, RSTFraction: 0.1,
		MinFlowBytes: 256, MaxFlowBytes: 4 << 10,
		MeanPacketGap: 50 * time.Millisecond, Seed: 9,
	}, corpus.NewGenerator(9))
	if err != nil {
		return benchResult{}, err
	}
	nFlows := len(trace.Flows)
	nPackets := len(trace.Packets)

	best := benchResult{Name: fmt.Sprintf("flow.ParallelEngine/shards-%d/trace-2000flows", shards)}
	for rep := 0; rep < 3; rep++ {
		pe, err := flow.NewParallelEngine(flow.EngineConfig{
			BufferSize: 32, Classifier: clf,
			CDB: flow.CDBConfig{PurgeOnClose: true},
		}, shards, nil)
		if err != nil {
			return benchResult{}, err
		}
		start := time.Now()
		for i := range trace.Packets {
			if _, err := pe.Process(&trace.Packets[i]); err != nil {
				return benchResult{}, err
			}
		}
		if _, err := pe.FlushAll(trace.Packets[nPackets-1].Time + time.Hour); err != nil {
			return benchResult{}, err
		}
		elapsed := time.Since(start)
		fps := float64(nFlows) / elapsed.Seconds()
		if fps > best.FlowsPerSec {
			best.FlowsPerSec = fps
			best.NsPerOp = float64(elapsed.Nanoseconds()) / float64(nPackets)
		}
	}
	return best, nil
}

func run(out string) error {
	sizes := []struct {
		label string
		bytes int
	}{{"256B", 256}, {"1KiB", 1 << 10}, {"4KiB", 4 << 10}}

	doc := benchFile{
		Generated:  "iustitia-bench-v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	var fast1k, legacy1k benchResult
	for _, s := range sizes {
		data, err := deterministicPayload(s.bytes)
		if err != nil {
			return err
		}
		fast := vectorEntry("entropy.VectorAt/"+s.label+"/w1-10/packed", data, false)
		doc.Results = append(doc.Results, fast)
		fmt.Fprintf(os.Stderr, "%-44s %12.0f ns/op %8d B/op %6d allocs/op\n",
			fast.Name, fast.NsPerOp, fast.BytesPerOp, fast.AllocsPerOp)
		legacy := vectorEntry("entropy.VectorAt/"+s.label+"/w1-10/legacy", data, true)
		doc.Results = append(doc.Results, legacy)
		fmt.Fprintf(os.Stderr, "%-44s %12.0f ns/op %8d B/op %6d allocs/op\n",
			legacy.Name, legacy.NsPerOp, legacy.BytesPerOp, legacy.AllocsPerOp)
		if s.bytes == 1<<10 {
			fast1k, legacy1k = fast, legacy
		}
	}
	if fast1k.AllocsPerOp > 0 {
		doc.AllocImprovement1KiB = float64(legacy1k.AllocsPerOp) / float64(fast1k.AllocsPerOp)
	}
	for _, shards := range []int{1, 4} {
		entry, err := engineEntry(shards)
		if err != nil {
			return err
		}
		doc.Results = append(doc.Results, entry)
		fmt.Fprintf(os.Stderr, "%-44s %12.0f ns/pkt %14.0f flows/sec\n",
			entry.Name, entry.NsPerOp, entry.FlowsPerSec)
	}

	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (alloc improvement at 1 KiB: %.0fx)\n",
		out, doc.AllocImprovement1KiB)
	return nil
}

func main() {
	out := flag.String("out", "BENCH_entropy.json", "output JSON path")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "iustitia-benchjson:", err)
		os.Exit(1)
	}
}

package main

// Stream-mode measurements. Alongside the buffered engine curve, each run
// records the constant-memory classification path: flows/sec through
// flow.ParallelEngine with Stream set (both sketch backends), the resident
// heap bytes held per pending flow versus the buffered engine, and a
// differential harness reporting the estimated-vs-exact h_k error per
// corpus class. The numbers land in the benchRun's "stream" object so the
// trajectory shows the accuracy/memory trade the (δ,ε) sketches buy.

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"iustitia/internal/core"
	"iustitia/internal/corpus"
	"iustitia/internal/entest"
	"iustitia/internal/entropy"
	"iustitia/internal/flow"
	"iustitia/internal/packet"
)

// Sketch parameters for every stream-mode measurement: the serve command's
// defaults, so the recorded error matches what -stream ships with.
const (
	streamEpsilon = 0.25
	streamDelta   = 0.25
	streamSeed    = 7
)

// Resident-memory probe shape: flows half-filled against b=1 KiB, so every
// flow is pending (neither classified nor empty) when the heap is read.
const (
	residentFlows    = 512
	residentFeed     = 512
	residentBufBytes = 1 << 10
)

// vectorClf adapts *core.Classifier to flow.VectorClassifier: the core
// model already classifies pre-extracted vectors, it just names its widths
// accessor differently.
type vectorClf struct{ *core.Classifier }

func (c vectorClf) FeatureWidths() []int { return c.Widths() }

// streamReport is the stream-mode block of one benchRun.
type streamReport struct {
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
	// ExactBytesPerFlow is the buffered engine's resident heap bytes per
	// pending flow under the same probe load, the baseline the backends
	// are compared against.
	ExactBytesPerFlow float64         `json:"exact_resident_bytes_per_flow"`
	Backends          []streamBackend `json:"backends"`
	// Footprint is the buffered-vs-sketched resident-bytes curve over
	// growing buffer budgets: the sketch footprint is constant in b, the
	// buffered footprint linear, so the curve shows where each sketch
	// backend overtakes the buffered path.
	Footprint []footprintPoint `json:"footprint_crossover,omitempty"`
}

// footprintPoint is one buffer budget's resident bytes per pending flow,
// buffered versus each sketch backend.
type footprintPoint struct {
	BufBytes          int                `json:"buf_bytes"`
	Flows             int                `json:"probe_flows"`
	ExactBytesPerFlow float64            `json:"exact_resident_bytes_per_flow"`
	Backends          map[string]float64 `json:"resident_bytes_per_flow"`
}

// streamBackend is one sketch backend's footprint and accuracy.
type streamBackend struct {
	Backend string `json:"backend"`
	// Counters is the per-flow counter budget (g·z summed over widths,
	// plus the k-gram windows) — the constant the mode's memory is
	// constant in.
	Counters             int              `json:"counters_per_flow"`
	ResidentBytesPerFlow float64          `json:"resident_bytes_per_flow"`
	Errors               []streamClassErr `json:"h_error_by_class"`
}

// streamClassErr is the estimated-vs-exact h_k error of one (class, width)
// cell, aggregated over independent trials.
type streamClassErr struct {
	Class   string  `json:"class"`
	Width   int     `json:"width"`
	MeanAbs float64 `json:"mean_abs_error"`
	MaxAbs  float64 `json:"max_abs_error"`
}

// streamSection appends the stream-mode engine curve to cur.Results and
// fills cur.Stream. exactFPS is the buffered shards-1/single flows/sec,
// the denominator of the stream-vs-exact speedup ratios.
func streamSection(env *benchEnv, cur *benchRun, exactFPS float64) error {
	rep := &streamReport{Epsilon: streamEpsilon, Delta: streamDelta}
	exactBytes, err := residentBytesPerFlow(env.clf, nil, residentBufBytes, residentFeed, residentFlows)
	if err != nil {
		return err
	}
	rep.ExactBytesPerFlow = exactBytes

	widths := env.clf.(vectorClf).FeatureWidths()
	for _, kind := range []entest.SketchKind{entest.SketchLall, entest.SketchCC} {
		scfg := &flow.StreamConfig{
			Epsilon: streamEpsilon, Delta: streamDelta, Sketch: kind, Seed: streamSeed,
		}
		for _, shards := range []int{1, 4} {
			name := fmt.Sprintf("flow.ParallelEngine/stream-%s/shards-%d/single/trace-2000flows",
				kind, shards)
			entry, err := env.engineEntry(name, shards, modeSingle, scfg, false)
			if err != nil {
				return err
			}
			cur.Results = append(cur.Results, entry)
			fmt.Fprintf(os.Stderr, "%-56s %12.0f ns/pkt %14.0f flows/sec\n",
				entry.Name, entry.NsPerOp, entry.FlowsPerSec)
			if shards == 1 && exactFPS > 0 {
				key := fmt.Sprintf("engine_stream_%s_over_exact_shards1", kind)
				cur.Speedups[key] = entry.FlowsPerSec / exactFPS
			}
		}

		resident, err := residentBytesPerFlow(env.clf, scfg, residentBufBytes, residentFeed, residentFlows)
		if err != nil {
			return err
		}
		probe, err := entest.NewStreamVectorConfig(entest.StreamConfig{
			Epsilon: streamEpsilon, Delta: streamDelta, Widths: widths,
			ExpectedLen: residentBufBytes, Seed: streamSeed, Kind: kind,
		})
		if err != nil {
			return err
		}
		errs, err := streamErrorHarness(kind, widths)
		if err != nil {
			return err
		}
		rep.Backends = append(rep.Backends, streamBackend{
			Backend:              kind.String(),
			Counters:             probe.Counters(),
			ResidentBytesPerFlow: resident,
			Errors:               errs,
		})
		fmt.Fprintf(os.Stderr, "stream-%-4s %6d counters/flow %10.0f resident B/flow (buffered: %.0f)\n",
			kind, probe.Counters(), resident, exactBytes)
	}
	if err := footprintCrossover(env, rep); err != nil {
		return err
	}
	cur.Stream = rep
	return nil
}

// footprintCrossover probes resident bytes per pending flow at growing
// buffer budgets. The flow count scales down with b so the probe heap
// stays bounded (~32 MiB): per-flow attribution is unaffected.
func footprintCrossover(env *benchEnv, rep *streamReport) error {
	for _, b := range []int{4 << 10, 64 << 10, 1 << 20} {
		flows := residentFlows
		if budget := (32 << 20) / b; budget < flows {
			flows = budget
		}
		feed := b / 2 // half-filled, so every probe flow stays pending
		exact, err := residentBytesPerFlow(env.clf, nil, b, feed, flows)
		if err != nil {
			return err
		}
		point := footprintPoint{
			BufBytes: b, Flows: flows,
			ExactBytesPerFlow: exact,
			Backends:          map[string]float64{},
		}
		for _, kind := range []entest.SketchKind{entest.SketchLall, entest.SketchCC} {
			scfg := &flow.StreamConfig{
				Epsilon: streamEpsilon, Delta: streamDelta, Sketch: kind, Seed: streamSeed,
			}
			resident, err := residentBytesPerFlow(env.clf, scfg, b, feed, flows)
			if err != nil {
				return err
			}
			point.Backends[kind.String()] = resident
		}
		rep.Footprint = append(rep.Footprint, point)
		fmt.Fprintf(os.Stderr, "footprint b=%-8d buffered %10.0f B/flow  lall %10.0f  cc %10.0f (%d flows)\n",
			b, point.ExactBytesPerFlow, point.Backends["lall"], point.Backends["cc"], flows)
	}
	return nil
}

// residentBytesPerFlow feeds residentFlows half-filled flows into a fresh
// single-shard engine and reports the heap growth per pending flow
// (GC-settled HeapAlloc delta). stream == nil measures the buffered
// baseline. The shared payload slice is allocated before the first heap
// read, so only per-flow engine state is attributed.
func residentBytesPerFlow(clf flow.Classifier, stream *flow.StreamConfig, bufBytes, feed, flows int) (float64, error) {
	payload, err := deterministicPayload(feed)
	if err != nil {
		return 0, err
	}
	eng, err := flow.NewEngine(flow.EngineConfig{
		BufferSize: bufBytes, Classifier: clf,
		CDB: flow.CDBConfig{PurgeOnClose: true}, Stream: stream,
	})
	if err != nil {
		return 0, err
	}
	pkts := make([]packet.Packet, flows)
	for i := range pkts {
		pkts[i] = packet.Packet{
			Tuple: packet.FiveTuple{
				SrcIP: [4]byte{10, 0, byte(i >> 8), byte(i)}, DstIP: [4]byte{10, 1, 1, 1},
				SrcPort: uint16(20000 + i), DstPort: 443, Transport: packet.TCP,
			},
			Time:    time.Duration(i) * time.Microsecond,
			Flags:   packet.FlagACK,
			Payload: payload,
		}
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := range pkts {
		if _, err := eng.Process(&pkts[i]); err != nil {
			return 0, err
		}
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if st := eng.Stats(); st.Pending != flows {
		return 0, fmt.Errorf("resident probe: %d flows pending, want %d", st.Pending, flows)
	}
	delta := float64(after.HeapAlloc) - float64(before.HeapAlloc)
	if delta < 0 {
		delta = 0
	}
	runtime.KeepAlive(eng)
	return delta / float64(flows), nil
}

// streamErrorHarness runs the differential exact-vs-stream comparison: for
// each corpus class it sketches fresh deterministic payloads and reports
// the absolute h_k error against entropy.VectorAt's exact vector, per
// width, aggregated over independently seeded trials.
func streamErrorHarness(kind entest.SketchKind, widths []int) ([]streamClassErr, error) {
	const payloadLen = 4 << 10
	const trials = 9
	var out []streamClassErr
	for class := corpus.Class(0); class < corpus.NumClasses; class++ {
		meanAbs := make([]float64, len(widths))
		maxAbs := make([]float64, len(widths))
		for trial := 0; trial < trials; trial++ {
			f, err := corpus.NewGenerator(int64(100+trial)).File(class, payloadLen)
			if err != nil {
				return nil, err
			}
			data := f.Data[:payloadLen]
			exact, err := entropy.VectorAt(data, widths)
			if err != nil {
				return nil, err
			}
			sv, err := entest.NewStreamVectorConfig(entest.StreamConfig{
				Epsilon: streamEpsilon, Delta: streamDelta, Widths: widths,
				ExpectedLen: payloadLen, Seed: int64(1000 + trial), Kind: kind,
			})
			if err != nil {
				return nil, err
			}
			if _, err := sv.Write(data); err != nil {
				return nil, err
			}
			est, err := sv.Vector()
			if err != nil {
				return nil, err
			}
			for j := range widths {
				d := math.Abs(est[j] - exact[j])
				meanAbs[j] += d / trials
				if d > maxAbs[j] {
					maxAbs[j] = d
				}
			}
		}
		for j, k := range widths {
			out = append(out, streamClassErr{
				Class: class.String(), Width: k,
				MeanAbs: meanAbs[j], MaxAbs: maxAbs[j],
			})
		}
	}
	return out, nil
}

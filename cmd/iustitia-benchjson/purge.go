package main

// CDB purge tail-latency series. The classification database used to run
// its whole inactivity sweep — an O(table) scan — on every PurgeEvery-th
// insert, so one unlucky insert on the hot path absorbed the entire
// purge. The incremental design amortizes the same scan over the window,
// bounding per-insert work at ⌈size/PurgeEvery⌉ examined records. This
// series records both shapes' per-insert latency tails: the full-sweep
// column is an emulation of the pre-incremental behaviour (sweeps
// disabled, an explicit full Sweep inside the timed region every
// PurgeEvery inserts), so the trajectory keeps before/after evidence.

import (
	"encoding/binary"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/flow"
)

const (
	purgeTailInserts = 60_000
	purgeTailWindow  = 5_000
)

// purgeTailSection appends the incremental-vs-full-sweep tail entries and
// the tail ratio to the run.
func purgeTailSection(cur *benchRun) error {
	inc, err := purgeTailEntry(
		fmt.Sprintf("flow.CDB/purge-incremental/stale-inserts-%d", purgeTailInserts), true)
	if err != nil {
		return err
	}
	full, err := purgeTailEntry(
		fmt.Sprintf("flow.CDB/purge-fullsweep-emulation/stale-inserts-%d", purgeTailInserts), false)
	if err != nil {
		return err
	}
	cur.Results = append(cur.Results, inc, full)
	for _, e := range []benchResult{inc, full} {
		fmt.Fprintf(os.Stderr, "%-56s %12.0f ns/op %10.0f p99 %12.0f max\n",
			e.Name, e.NsPerOp, e.P99NsPerOp, e.MaxNsPerOp)
	}
	if inc.MaxNsPerOp > 0 {
		cur.Speedups["cdb_purge_tail_full_over_incremental"] = full.MaxNsPerOp / inc.MaxNsPerOp
	}
	return nil
}

// purgeTailEntry drives stale inserts through one CDB and reports the
// per-insert latency distribution. Time advances 10 ms per insert against
// a 1 ms inactivity constant, so earlier records are always stale — the
// sweep, amortized or not, never runs out of work.
func purgeTailEntry(name string, incremental bool) (benchResult, error) {
	cdb := flow.NewCDB(flow.CDBConfig{
		PurgeInactive: incremental,
		N:             4,
		DefaultLambda: time.Millisecond,
		PurgeEvery:    purgeTailWindow,
	})
	lat := make([]float64, purgeTailInserts)
	var total float64
	for i := 0; i < purgeTailInserts; i++ {
		now := time.Duration(i) * 10 * time.Millisecond
		var id flow.ID
		binary.BigEndian.PutUint64(id[:8], uint64(i))
		start := time.Now()
		cdb.Insert(id, corpus.Text, now)
		if !incremental && (i+1)%purgeTailWindow == 0 {
			// The legacy design ran this scan on the insert path itself;
			// keeping it inside the timed region is the point.
			cdb.Sweep(now)
		}
		lat[i] = float64(time.Since(start).Nanoseconds())
		total += lat[i]
	}
	if incremental && cdb.Stats().SweepExamined == 0 {
		return benchResult{}, fmt.Errorf("%s: incremental sweep never ran", name)
	}
	sort.Float64s(lat)
	return benchResult{
		Name:       name,
		NsPerOp:    total / purgeTailInserts,
		P99NsPerOp: lat[purgeTailInserts*99/100],
		MaxNsPerOp: lat[purgeTailInserts-1],
		Procs:      runtime.GOMAXPROCS(0),
	}, nil
}

// Command iustitia-bench regenerates the paper's evaluation tables and
// figures (see DESIGN.md §3 for the experiment index) and prints them as
// text tables.
//
// Usage:
//
//	iustitia-bench -experiment all -scale default
//	iustitia-bench -experiment table1,fig10 -scale paper
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"iustitia/internal/core"
	"iustitia/internal/experiments"
)

// runner executes one experiment and returns its printable result.
type runner struct {
	name string
	desc string
	run  func(experiments.Scale) (fmt.Stringer, error)
}

func runners() []runner {
	return []runner{
		{"fig2a", "file entropy-vector feature space", func(s experiments.Scale) (fmt.Stringer, error) {
			return experiments.RunFeatureSpace(s)
		}},
		{"table1-cart", "cross-validated file classification, CART", func(s experiments.Scale) (fmt.Stringer, error) {
			return experiments.RunTable1(s, core.KindCART)
		}},
		{"table1-svm", "cross-validated file classification, SVM-RBF", func(s experiments.Scale) (fmt.Stringer, error) {
			return experiments.RunTable1(s, core.KindSVM)
		}},
		{"fig3", "JSD of prefix vs whole-file distributions", func(s experiments.Scale) (fmt.Stringer, error) {
			return experiments.RunJSD(s, []int{1, 2, 3},
				[]float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0})
		}},
		{"table2", "feature selection (tree voting + SFS)", func(s experiments.Scale) (fmt.Stringer, error) {
			return experiments.RunTable2(s)
		}},
		{"fig4", "accuracy vs buffer size, H_F vs H_b training", func(s experiments.Scale) (fmt.Stringer, error) {
			return experiments.RunBufferSweep(s, experiments.DefaultBufferSizes)
		}},
		{"fig5", "entropy vector calculation time and space", func(s experiments.Scale) (fmt.Stringer, error) {
			return experiments.RunCalcCost(s, core.PhiPrimeSVM, experiments.DefaultBufferSizes)
		}},
		{"fig6", "training methods H_F / H_b / H_b'", func(s experiments.Scale) (fmt.Stringer, error) {
			return experiments.RunTrainMethods(s, experiments.DefaultBufferSizes[:9], 512)
		}},
		{"fig7", "(ε, δ) estimation accuracy grid", func(s experiments.Scale) (fmt.Stringer, error) {
			eps, deltas := experiments.DefaultEstimationGrid()
			return experiments.RunEstimationGrid(s, eps, deltas, 1024)
		}},
		{"table3", "exact vs estimated time and space", func(s experiments.Scale) (fmt.Stringer, error) {
			return experiments.RunTable3(s, 0.25, 0.75)
		}},
		{"fig8", "CDB size with and without purging", func(s experiments.Scale) (fmt.Stringer, error) {
			return experiments.RunCDBPurge(s)
		}},
		{"fig9", "trace payload-size and inter-arrival CDFs", func(s experiments.Scale) (fmt.Stringer, error) {
			return experiments.RunTraceCDF(s)
		}},
		{"fig10", "classifier buffering delay", func(s experiments.Scale) (fmt.Stringer, error) {
			return experiments.RunDelay(s, experiments.DefaultDelayBuffers)
		}},
		{"modelselect", "SVM (γ, C) model selection, exact vs estimated", func(s experiments.Scale) (fmt.Stringer, error) {
			gammas, cs := experiments.DefaultModelSelectionGrid()
			return experiments.RunModelSelection(s, gammas, cs)
		}},
		{"purge", "CDB purge-policy ablation", func(s experiments.Scale) (fmt.Stringer, error) {
			return experiments.RunPurgePolicy(s)
		}},
		{"evasion", "padding attack vs random-skip countermeasure (§4.6)", func(s experiments.Scale) (fmt.Stringer, error) {
			return experiments.RunEvasion(s, 64, []int{0, 64, 256, 1024})
		}},
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iustitia-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		which     = flag.String("experiment", "all", "comma-separated experiment names, or 'all' / 'list'")
		scaleName = flag.String("scale", "default", "experiment scale: small, default, or paper")
		seed      = flag.Int64("seed", 1, "experiment seed")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.SmallScale()
	case "default":
		scale = experiments.DefaultScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q (want small, default, or paper)", *scaleName)
	}
	scale.Seed = *seed

	all := runners()
	if *which == "list" {
		for _, r := range all {
			fmt.Printf("%-12s %s\n", r.name, r.desc)
		}
		return nil
	}

	selected := all
	if *which != "all" {
		wanted := map[string]bool{}
		for _, name := range strings.Split(*which, ",") {
			wanted[strings.TrimSpace(name)] = true
		}
		selected = nil
		for _, r := range all {
			if wanted[r.name] {
				selected = append(selected, r)
				delete(wanted, r.name)
			}
		}
		if len(wanted) > 0 {
			return fmt.Errorf("unknown experiments: %v (use -experiment list)", keys(wanted))
		}
	}

	fmt.Printf("scale: %d files/class, %d folds, file sizes %d-%d, seed %d\n\n",
		scale.PerClass, scale.Folds, scale.MinFileSize, scale.MaxFileSize, scale.Seed)
	for _, r := range selected {
		fmt.Printf("=== %s — %s ===\n", r.name, r.desc)
		start := time.Now()
		result, err := r.run(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		fmt.Print(result.String())
		fmt.Printf("(%s in %s)\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

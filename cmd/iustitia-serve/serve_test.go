package main

// Integration tests for the ingest daemon: a SIGTERM mid-serve must
// drain and write a resumable final checkpoint, and a second signal
// must force immediate exit, skipping it.

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"iustitia"
	"iustitia/internal/corpus"
	"iustitia/internal/flow"
	"iustitia/internal/ingest"
	"iustitia/internal/packet"
	"iustitia/internal/persist"
)

// buildBinary compiles iustitia-serve into dir.
func buildBinary(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "iustitia-serve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// trainModelSnapshot trains a small classifier on the synthetic corpus
// and saves it as a binary snapshot.
func trainModelSnapshot(t *testing.T, dir string) string {
	t.Helper()
	files, err := iustitia.SyntheticCorpus(1, 30, 2048, 4096)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := iustitia.Train(files)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "model.snap")
	if err := clf.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// syncBuf collects a subprocess's combined output safely across the
// goroutines exec.Cmd writes from.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitForOutput polls the collected output until substr appears,
// returning the full output seen so far.
func waitForOutput(t *testing.T, cmd *exec.Cmd, out *syncBuf, substr string) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		got := out.String()
		if strings.Contains(got, substr) {
			return got
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatalf("output never contained %q:\n%s", substr, got)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// extractAddr pulls the address printed after prefix on its own line.
func extractAddr(t *testing.T, output, prefix string) string {
	t.Helper()
	for _, line := range strings.Split(output, "\n") {
		if rest, ok := strings.CutPrefix(line, prefix); ok {
			return strings.TrimSpace(rest)
		}
	}
	t.Fatalf("no %q line in output:\n%s", prefix, output)
	return ""
}

// statusText fetches one dump from the status endpoint.
func statusText(addr string) (string, error) {
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return "", err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(2 * time.Second))
	b, err := io.ReadAll(c)
	return string(b), err
}

// waitForStatus polls the status endpoint until substr appears in a dump.
func waitForStatus(t *testing.T, cmd *exec.Cmd, addr, substr string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last string
	for {
		if got, err := statusText(addr); err == nil {
			last = got
			if strings.Contains(got, substr) {
				return
			}
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatalf("status never contained %q; last dump:\n%s", substr, last)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServeDrainWritesResumableCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the binary")
	}
	dir := t.TempDir()
	bin := buildBinary(t, dir)
	model := trainModelSnapshot(t, dir)
	ckpt := filepath.Join(dir, "serve.ckpt")

	cmd := exec.Command(bin,
		"-load-model", model, "-listen", "127.0.0.1:0", "-status", "127.0.0.1:0",
		"-shards", "2", "-checkpoint", ckpt)
	var out syncBuf
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	banner := waitForOutput(t, cmd, &out, "status on ")
	addr := extractAddr(t, banner, "listening on ")
	statusAddr := extractAddr(t, banner, "status on ")

	cfg := packet.DefaultTraceConfig()
	cfg.Flows = 40
	cfg.Seed = 11
	trace, err := packet.Generate(cfg, corpus.NewGenerator(cfg.Seed+1))
	if err != nil {
		t.Fatal(err)
	}
	client, err := ingest.NewClient(ingest.ClientConfig{
		Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range trace.Packets {
		if err := client.Send(&trace.Packets[i]); err != nil {
			t.Fatalf("Send(%d): %v", i, err)
		}
	}
	client.Close()

	// Wait for the workers to clear the queues, then drain via SIGTERM.
	waitForStatus(t, cmd, statusAddr, fmt.Sprintf("admitted: %d\n", len(trace.Packets)))
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("drained run exited with %v\n%s", err, out.String())
	}
	output := out.String()
	if !strings.Contains(output, "draining") {
		t.Errorf("no drain banner in output:\n%s", output)
	}
	if !strings.Contains(output, "final checkpoint saved to "+ckpt) {
		t.Errorf("no final-checkpoint line in output:\n%s", output)
	}

	// Every on-disk checkpoint is a node checkpoint (quiesced engine
	// snapshot + delivery watermark + pending flows); it restores into a
	// fresh engine with the same shard layout and carries the replay's
	// progress.
	wrapped, err := persist.LoadFile(ckpt, persist.KindNodeCheckpoint)
	if err != nil {
		t.Fatalf("final checkpoint unreadable: %v", err)
	}
	_, payload, pending, err := ingest.DecodeNodeCheckpoint(wrapped)
	if err != nil {
		t.Fatalf("final node checkpoint does not decode: %v", err)
	}
	engine, err := flow.NewParallelEngine(flow.EngineConfig{
		BufferSize: 32,
		Classifier: flow.ClassifierFunc(func([]byte) (corpus.Class, error) {
			return corpus.Text, nil
		}),
	}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.ImportCheckpoint(payload); err != nil {
		t.Fatalf("final checkpoint does not restore: %v", err)
	}
	if n, err := engine.ImportPending(pending); err != nil || n != 0 {
		t.Errorf("drain left pending-flow state in the checkpoint: imported %d flows, err %v", n, err)
	}
	st := engine.Stats()
	if st.Admitted != len(trace.Flows) {
		t.Errorf("restored checkpoint admitted %d flows, trace has %d", st.Admitted, len(trace.Flows))
	}
	if st.Classified == 0 {
		t.Errorf("restored checkpoint classified nothing: %+v", st)
	}
	if st.Pending != 0 {
		t.Errorf("drain left %d flows pending in the checkpoint", st.Pending)
	}
}

func TestServeSecondSignalForcesExit(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the binary")
	}
	dir := t.TempDir()
	bin := buildBinary(t, dir)
	model := trainModelSnapshot(t, dir)
	ckpt := filepath.Join(dir, "skipped.ckpt")

	cmd := exec.Command(bin,
		"-load-model", model, "-listen", "127.0.0.1:0", "-status", "127.0.0.1:0",
		"-checkpoint", ckpt, "-drain-timeout", "60s")
	var out syncBuf
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	banner := waitForOutput(t, cmd, &out, "status on ")
	addr := extractAddr(t, banner, "listening on ")
	statusAddr := extractAddr(t, banner, "status on ")

	// Hold a connection open so the graceful drain cannot finish on its
	// own: send one frame, keep the socket up.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	p := trainPacket()
	frame, err := ingest.AppendFrame(nil, &p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	waitForStatus(t, cmd, statusAddr, "admitted: 1\n")

	// First signal starts the drain, which now blocks on the open
	// connection; the second must force an immediate exit.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitForOutput(t, cmd, &out, "draining")
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("second signal did not force exit:\n%s", out.String())
	}
	if code := cmd.ProcessState.ExitCode(); code != 130 {
		t.Errorf("exit code %d, want 130\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "final checkpoint skipped") {
		t.Errorf("no skip notice in output:\n%s", out.String())
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("forced exit still wrote the checkpoint (stat err %v)", err)
	}
}

// trainPacket is one minimal data packet for hand-rolled frames.
func trainPacket() packet.Packet {
	return packet.Packet{
		Tuple: packet.FiveTuple{
			SrcIP:     [4]byte{10, 0, 0, 1},
			DstIP:     [4]byte{10, 0, 0, 2},
			SrcPort:   40000,
			DstPort:   443,
			Transport: packet.TCP,
		},
		Time:    time.Millisecond,
		Payload: []byte("hello"),
	}
}

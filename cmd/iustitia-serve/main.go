// Command iustitia-serve runs the networked ingest daemon: a framed
// packet server (TCP and/or unix socket) feeding a sharded online
// classification engine, with backpressure, supervised workers, a
// plain-text status endpoint, and checkpointed durable state.
//
// Serve on TCP with a status endpoint and periodic checkpoints:
//
//	iustitia-serve -model model.json -listen 127.0.0.1:9301 \
//	    -status 127.0.0.1:9302 -checkpoint state.ckpt
//
// Stream a trace into it from another host (or the same one):
//
//	iustitia-trace -flows 2000 -connect 127.0.0.1:9301
//
// The first SIGINT/SIGTERM drains gracefully: stop accepting, flush
// pending flows, write a final checkpoint. A second signal forces
// immediate exit, skipping the final checkpoint. -resume restores a
// previous run's checkpoint (same -shards), falling back to a cold
// start, with a warning, if the checkpoint is unusable.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof debug endpoint
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"iustitia/internal/core"
	"iustitia/internal/corpus"
	"iustitia/internal/entest"
	"iustitia/internal/flow"
	"iustitia/internal/ingest"
	"iustitia/internal/ops"
	"iustitia/internal/persist"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iustitia-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "", "TCP listen address for framed packet ingest (e.g. 127.0.0.1:9301)")
		unixSock  = flag.String("unix", "", "unix socket path for framed packet ingest")
		status    = flag.String("status", "", "TCP listen address for the plain-text status endpoint")
		modelPath = flag.String("model", "model.json", "trained model path (JSON)")
		loadModel = flag.String("load-model", "", "load the model from a binary snapshot instead of -model JSON")
		buffer    = flag.Int("b", 32, "payload bytes buffered per flow before classification")
		idleFlush = flag.Duration("idle-flush", 2*time.Second, "classify flows idle this long in packet time (0 = only at drain)")
		shards    = flag.Int("shards", 4, "engine shards (flow-parallel classification)")
		workers   = flag.Int("workers", 2, "supervised ingest workers")
		batch     = flag.Int("batch", 0, "packets per engine submission batch (1 = per-packet, 0 = default)")
		pipeline  = flag.Bool("pipeline", false, "run the engine in pipelined mode: one worker goroutine per shard behind bounded queues")
		replicate = flag.Bool("replicate-model", true, "give each shard its own classifier replica (no shared model-pointer word on the hot path); hot-swap flips every replica under the frame gate")
		pprofAddr = flag.String("pprof", "", "TCP listen address for the net/http/pprof debug endpoint (enables mutex and block profiling)")

		queueDepth  = flag.Int("ingest-queue", 1024, "total packets queued between readers and workers")
		connQueue   = flag.Int("conn-queue", 256, "unprocessed packets one connection may hold")
		overflow    = flag.String("overflow", "block", "backpressure policy at full queues: block|shed|disconnect")
		readTimeout = flag.Duration("read-timeout", 30*time.Second, "per-read deadline inside a frame (0 = none)")
		idleTimeout = flag.Duration("idle-timeout", 5*time.Minute, "deadline between frames on a connection (0 = none)")
		maxFrame    = flag.Int("max-frame", 0, "max frame payload bytes a header may declare (0 = default)")

		stream  = flag.Bool("stream", false, "constant-memory stream mode: sketch per-flow entropy instead of buffering b payload bytes")
		sketch  = flag.String("sketch", "lall", "stream-mode sketch backend: lall (reservoir AMS) | cc (compressed counting)")
		epsilon = flag.Float64("epsilon", 0.25, "stream-mode relative error bound ε in (0,1)")
		delta   = flag.Float64("delta", 0.25, "stream-mode failure probability δ in (0,1)")

		maxPending = flag.Int("max-pending", 0, "cap on concurrently buffered flows per shard (0 = unbounded)")
		evict      = flag.String("evict", "oldest", "policy at the pending cap: oldest|partial|shed")
		fallback   = flag.String("fallback", "text", "fallback class for shed flows and tolerated failures: text|binary|encrypted")
		tolerate   = flag.Bool("tolerate", true, "route classifier failures to the fallback class instead of surfacing errors")
		cdbCap     = flag.Int("cdb-cap", 0, "hard cap on classification-database records per shard (0 = unbounded)")

		nodeName   = flag.String("node-name", "", "cluster node name on the machine-readable STATUS line (default \"node\")")
		config     = flag.String("config", "", "live-reconfig file re-read on SIGHUP or the RELOAD admin verb (k=v lines: overflow, batch, max_pending, evict, idle_flush)")
		checkpoint = flag.String("checkpoint", "", "write engine checkpoints to this path (periodic and at drain)")
		ckptEvery  = flag.Duration("checkpoint-interval", 30*time.Second, "wall-clock interval between periodic checkpoints (with -checkpoint)")
		resume     = flag.String("resume", "", "restore engine state from this checkpoint before serving (cold start if unusable)")
		drainTime  = flag.Duration("drain-timeout", 30*time.Second, "how long a graceful drain waits for connected clients")
	)
	flag.Parse()

	if *listen == "" && *unixSock == "" {
		return fmt.Errorf("no listener: pass -listen and/or -unix")
	}
	overflowPolicy, err := ingest.ParseOverflowPolicy(*overflow)
	if err != nil {
		return err
	}
	evictPolicy, err := flow.ParseEvictPolicy(*evict)
	if err != nil {
		return err
	}
	fbClass, err := parseClass(*fallback)
	if err != nil {
		return err
	}

	// The model is loaded as a bare core.Classifier: the ops manager flips
	// its atomic model payload on SWAP-MODEL, and the engine classifies
	// through the same pointer, so a hot-swap needs no engine rebuild.
	var clf *core.Classifier
	if *loadModel != "" {
		payload, err := persist.LoadFile(*loadModel, persist.KindClassifier)
		if err != nil {
			return err
		}
		clf, err = core.DecodeSnapshot(payload)
		if err != nil {
			return err
		}
	} else {
		mf, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		clf, err = core.Load(mf)
		mf.Close()
		if err != nil {
			return err
		}
	}

	// By default every shard gets its own classifier replica, so the hot
	// path never shares the atomic model-pointer word across cores; the
	// ReplicaSet is then the ops model surface, and SWAP-MODEL flips all
	// replicas atomically under the ingest frame gate.
	// -replicate-model=false restores the single shared classifier.
	var modelSurface ops.ModelSurface = clf
	var shardClassifiers []flow.Classifier
	if *replicate {
		rs, err := core.NewReplicaSet(clf, *shards)
		if err != nil {
			return err
		}
		shardClassifiers = make([]flow.Classifier, *shards)
		for i := range shardClassifiers {
			shardClassifiers[i] = rs.Replica(i)
		}
		modelSurface = rs
	}

	engineCfg := flow.EngineConfig{
		BufferSize:    *buffer,
		Classifier:    clf,
		IdleFlush:     *idleFlush,
		MaxPending:    *maxPending,
		Eviction:      evictPolicy,
		FallbackClass: fbClass,
		Faults:        flow.FaultPolicy{Tolerate: *tolerate},
		CDB: flow.CDBConfig{
			PurgeOnClose:  true,
			PurgeInactive: true,
			N:             4,
			MaxRecords:    *cdbCap,
		},
	}
	var streamMode string
	if *stream {
		kind, err := entest.ParseSketchKind(*sketch)
		if err != nil {
			return err
		}
		engineCfg.Stream = &flow.StreamConfig{
			Epsilon: *epsilon,
			Delta:   *delta,
			Sketch:  kind,
		}
		streamMode = kind.String()
	}
	engine, err := flow.NewParallelEngine(engineCfg, *shards, shardClassifiers)
	if err != nil {
		return err
	}
	if *stream {
		fmt.Printf("stream mode: %s sketch, ε=%v δ=%v, %d counters per flow (vs %d buffered bytes)\n",
			streamMode, *epsilon, *delta, engine.StreamCounters(), *buffer)
	}

	// Resume from a prior checkpoint when asked. Restore into a throwaway
	// engine first so a checkpoint that fails half-way through its shards
	// cannot leave the serving engine partially restored: any unusable
	// checkpoint is a logged warning and a clean cold start.
	var resumeSeq uint64
	if *resume != "" {
		if restored, seq, err := resumeEngine(engineCfg, *shards, shardClassifiers, *resume); err != nil {
			fmt.Fprintf(os.Stderr,
				"iustitia-serve: warning: cannot resume from %s (%v); cold start\n",
				*resume, err)
		} else {
			engine = restored
			resumeSeq = seq
			s := engine.Stats()
			fmt.Printf("resumed from %s: %d classified flows, %d CDB records\n",
				*resume, s.Classified, s.CDB.Size)
			if seq > 0 {
				// A node checkpoint carries the router's delivery watermark:
				// replayed frames at or below it will be deduplicated.
				fmt.Printf("resume watermark: seq %d\n", seq)
			}
		}
	}

	// Pipelined mode is started on the serving engine (after any resume
	// swap) and stopped after the drain barrier has flushed its queues.
	if *pipeline {
		if err := engine.StartPipeline(0); err != nil {
			return err
		}
		fmt.Printf("engine pipeline: %d shard workers\n", *shards)
	}

	// Signals are armed early so the ops DRAIN verb can inject a SIGTERM:
	// an admin-driven drain and an operator ^C share one shutdown path.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)

	mgr, err := ops.NewManager(ops.Config{
		Engine:     engine,
		Classifier: modelSurface,
		Classes:    corpus.NumClasses,
		BufferSize: *buffer,
		Stream:     *stream,
		ConfigPath: *config,
		Drain: func() {
			select {
			case sigCh <- syscall.SIGTERM:
			default: // a drain is already in flight
			}
		},
	})
	if err != nil {
		return err
	}
	reload := func() {
		st, err := mgr.ReloadConfig()
		if err != nil {
			fmt.Fprintln(os.Stderr, "iustitia-serve: reload:", err)
			return
		}
		fmt.Printf("reloaded %s: applied %s\n", *config, strings.Join(st.Keys(), ","))
	}

	var listeners []net.Listener
	if *listen != "" {
		l, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		fmt.Printf("listening on %s\n", l.Addr())
		listeners = append(listeners, l)
	}
	if *unixSock != "" {
		// A previous unclean exit may have left the socket file behind; a
		// fresh listen would fail on it.
		os.Remove(*unixSock)
		l, err := net.Listen("unix", *unixSock)
		if err != nil {
			return err
		}
		fmt.Printf("listening on unix socket %s\n", *unixSock)
		listeners = append(listeners, l)
	}
	var statusLn net.Listener
	if *status != "" {
		statusLn, err = net.Listen("tcp", *status)
		if err != nil {
			return err
		}
		fmt.Printf("status on %s\n", statusLn.Addr())
	}
	if *pprofAddr != "" {
		// Contention profiling is off by default in the runtime; a node
		// serving a pprof endpoint is being profiled, so sample mutex and
		// block events at rates cheap enough to leave on under load.
		runtime.SetMutexProfileFraction(5)
		runtime.SetBlockProfileRate(100_000)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return err
		}
		fmt.Printf("pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() { _ = http.Serve(pln, nil) }()
	}

	// Track when the last checkpoint landed so the STATUS line can carry
	// its age: a cluster router flags a node whose durability has stalled.
	var ckptMu sync.Mutex
	var lastCkpt time.Time
	if *resume != "" {
		if fi, err := os.Stat(*resume); err == nil {
			lastCkpt = fi.ModTime()
		}
	}
	ckptSaved := func() {
		ckptMu.Lock()
		lastCkpt = time.Now()
		ckptMu.Unlock()
	}

	srvCfg := ingest.Config{
		Engine:         engine,
		Listeners:      listeners,
		StatusListener: statusLn,
		Workers:        *workers,
		Batch:          *batch,
		QueueDepth:     *queueDepth,
		PerConnQueue:   *connQueue,
		Overflow:       overflowPolicy,
		FallbackClass:  fbClass,
		ReadTimeout:    *readTimeout,
		IdleTimeout:    *idleTimeout,
		MaxFrame:       *maxFrame,
		NodeName:       *nodeName,
		StreamMode:     streamMode,
		ResumeSeq:      resumeSeq,
		AdminHandler:   mgr.HandleAdmin,
		CheckpointTime: func() time.Time {
			ckptMu.Lock()
			defer ckptMu.Unlock()
			return lastCkpt
		},
	}
	if *checkpoint != "" {
		// Periodic and final durability both flow through the server's
		// quiesced node-checkpoint path, so every checkpoint on disk is a
		// consistent (watermark, engine, pending) triple — never an engine
		// snapshot torn mid-batch. A successful save advances acked_seq on
		// the STATUS line, telling a cluster router it may trim its replay
		// journal.
		srvCfg.NodeCheckpoint = func(payload []byte) error {
			if err := persist.SaveFile(*checkpoint, persist.KindNodeCheckpoint, payload); err != nil {
				fmt.Fprintln(os.Stderr, "iustitia-serve: checkpoint:", err)
				return err
			}
			ckptSaved()
			return nil
		}
		srvCfg.NodeCheckpointEvery = *ckptEvery
		srvCfg.OnFinalCheckpoint = func(snapshot []byte) {
			// The final node checkpoint (written right after this hook)
			// overwrites the path with the drain-complete state; this
			// message is the operator-visible drain marker.
			fmt.Printf("final checkpoint saved to %s\n", *checkpoint)
		}
	}
	srv, err := ingest.NewServer(srvCfg)
	if err != nil {
		return err
	}
	// Attach before Start so an admin SET arriving with the first packets
	// never races the wiring.
	mgr.AttachServer(srv)
	if err := srv.Start(); err != nil {
		return err
	}

	// SIGHUP re-reads the -config file and keeps serving. The first
	// INT/TERM starts a graceful drain (flush + final checkpoint); a second
	// forces immediate exit and says what was skipped.
	var sig os.Signal
	for {
		sig = <-sigCh
		if sig == syscall.SIGHUP {
			reload()
			continue
		}
		break
	}
	fmt.Printf("received %v: draining (second signal forces immediate exit)\n", sig)
	go func() {
		for {
			sig2 := <-sigCh
			if sig2 == syscall.SIGHUP {
				// Too late to retune, but not a reason to die mid-drain.
				continue
			}
			fmt.Fprintf(os.Stderr, "iustitia-serve: second %v: forcing immediate exit; final checkpoint skipped\n", sig2)
			os.Exit(130)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drainTime)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	// An in-flight swap probation must settle before exit, so a rollback
	// decision is never lost to process teardown.
	mgr.Close()
	if *pipeline {
		// Shutdown already barriered the shard workers; surface their
		// counters before tearing the pipeline down.
		ps := engine.PipelineStats()
		if stopErr := engine.StopPipeline(); stopErr != nil && drainErr == nil {
			drainErr = stopErr
		}
		if ps.Errors > 0 {
			fmt.Fprintf(os.Stderr, "iustitia-serve: pipeline: %d errors, first: %v\n",
				ps.Errors, ps.FirstErr)
		}
	}
	if *unixSock != "" {
		os.Remove(*unixSock)
	}

	st := srv.Stats()
	es := engine.Stats()
	fmt.Printf("drained: received %d, admitted %d, quarantined %d, shed %d over %d connections\n",
		st.Received, st.Admitted, st.Quarantined, st.Shed, st.TotalConns)
	fmt.Printf("engine: classified %d flows, fallback %d, dropped %d; queues: text=%d binary=%d encrypted=%d; CDB size %d\n",
		es.Classified, es.Fallback, es.Dropped,
		es.QueueCounts[corpus.Text], es.QueueCounts[corpus.Binary],
		es.QueueCounts[corpus.Encrypted], es.CDB.Size)
	if st.Supervisor.Panics > 0 {
		fmt.Printf("supervision: %d worker panics, %d restarts\n",
			st.Supervisor.Panics, st.Supervisor.Restarts)
	}
	return drainErr
}

// resumeEngine builds a fresh engine and restores a checkpoint into it,
// so the caller's serving engine is replaced only on full success. Both
// checkpoint kinds resume: a bare engine snapshot
// (KindParallelCheckpoint) restores classified state only, while a node
// checkpoint (KindNodeCheckpoint) also restores the in-flight pending
// flows and returns the delivery-sequence watermark to prime dedup with.
func resumeEngine(cfg flow.EngineConfig, shards int, classifiers []flow.Classifier, path string) (*flow.ParallelEngine, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	kind, payload, err := persist.Decode(data)
	if err != nil {
		return nil, 0, err
	}
	engine, err := flow.NewParallelEngine(cfg, shards, classifiers)
	if err != nil {
		return nil, 0, err
	}
	switch kind {
	case persist.KindParallelCheckpoint:
		if err := engine.ImportCheckpoint(payload); err != nil {
			return nil, 0, err
		}
		return engine, 0, nil
	case persist.KindNodeCheckpoint:
		seq, ckpt, pending, err := ingest.DecodeNodeCheckpoint(payload)
		if err != nil {
			return nil, 0, err
		}
		if err := engine.ImportCheckpoint(ckpt); err != nil {
			return nil, 0, err
		}
		if _, err := engine.ImportPending(pending); err != nil {
			return nil, 0, err
		}
		return engine, seq, nil
	default:
		return nil, 0, fmt.Errorf("checkpoint kind %d is not resumable", kind)
	}
}

// parseClass maps a flag value to its class.
func parseClass(s string) (corpus.Class, error) {
	for c, name := range corpus.ClassNames() {
		if s == name {
			return corpus.Class(c), nil
		}
	}
	return 0, fmt.Errorf("unknown class %q (want text|binary|encrypted)", s)
}
